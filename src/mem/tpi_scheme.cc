#include "mem/tpi_scheme.hh"

#include <algorithm>

namespace hscd {
namespace mem {

using compiler::MarkKind;

TpiScheme::TpiScheme(const MachineConfig &cfg, MainMemory &memory,
                     net::Network &network, stats::StatGroup *parent)
    : CoherenceScheme(cfg, memory, network, parent),
      _history(cfg.procs, Addr(memory.words()) * 4, cfg.lineBytes),
      _phase(EpochId{1} << (cfg.timetagBits - 1))
{
    _caches.reserve(cfg.procs);
    _wbuf.reserve(cfg.procs);
    for (unsigned p = 0; p < cfg.procs; ++p) {
        _caches.emplace_back(cfg, Addr(memory.words()) * 4);
        _wbuf.emplace_back(cfg.writeBufferAsCache,
                           cfg.writeBufferCacheWords);
    }
}

TpiScheme::Cache::Line &
TpiScheme::fill(ProcId proc, Addr addr, Cycles now)
{
    Cache &cache = _caches[proc];
    Addr base = cache.lineAddr(addr);
    unsigned widx = cache.wordIndex(addr);
    // Refill in place when the line is already resident (a Time-Read miss
    // on a present-but-expired word); otherwise take the LRU victim.
    Cache::Line *frame = cache.lookup(addr, now);
    if (!frame) {
        frame = &cache.victim(addr, now);
        if (frame->valid)
            _history.record(proc, frame->base, LineEvent::Evicted);
    }
    Cache::Line &line = *frame;
    line.valid = true;
    line.base = base;
    line.lastUse = now;
    for (unsigned w = 0; w < cache.wordsPerLine(); ++w) {
        line.stamps[w] = _mem.read(base + Addr(w) * 4);
        // Side-filled words may still be written by a concurrent task of
        // the current epoch, so they are only vouched for up to EC - 1.
        // In epoch 0 there is no representable EC - 1: those words stay
        // invalid, exactly as tags come up invalid at boot.
        if (w == widx) {
            line.words[w].valid = true;
            line.words[w].tt = _epoch;
        } else if (_epoch > 0) {
            line.words[w].valid = true;
            line.words[w].tt = _epoch - 1;
        } else {
            line.words[w].valid = false;
            line.words[w].tt = 0;
        }
    }
    _history.record(proc, base, LineEvent::Cached);
    ++_stats.readPackets;
    _stats.readWords += cache.wordsPerLine();
    _net.addTraffic(1, cache.wordsPerLine());
    return line;
}

void
TpiScheme::maybeCorruptTag(Cache::Line *line)
{
    if (!_fault || !line || !_fault->fire(fault::Site::MemTagFlip))
        return;
    // Flip one stored bit of the word's TPI state: one of the n timetag
    // bits, or (one draw in n+1) the valid bit. A lowered tag or cleared
    // valid bit only costs a conservative miss; a raised tag or
    // spuriously-set valid bit can vouch for a stale word, which the
    // value-stamp oracle / shadow-epoch detector must then flag.
    const std::uint64_t bits = _fault->draw(fault::Site::MemTagFlip);
    TpiWord &w = line->words[bits % _cfg.wordsPerLine()];
    const unsigned bit = (bits >> 32) % (_cfg.timetagBits + 1);
    if (bit == _cfg.timetagBits)
        w.valid = !w.valid;
    else
        w.tt ^= EpochId{1} << bit;
}

AccessResult
TpiScheme::miss(const MemOp &op, MissClass cls, unsigned widx)
{
    AccessResult res;
    Cache::Line &line = fill(op.proc, op.addr, op.now);
    ++_stats.readMisses;
    _stats.classify(cls);
    res.hit = false;
    res.cls = cls;
    res.stall = lineFetchLatency() +
                reliableSend(op.proc, op.now, "line fetch");
    res.observed = line.stamps[widx];
    _stats.missLatency.sample(double(res.stall));
    return res;
}

AccessResult
TpiScheme::access(const MemOp &op)
{
    AccessResult res;
    Cache &cache = _caches[op.proc];
    unsigned widx = cache.wordIndex(op.addr);

    if (op.write) {
        ++_stats.writes;
        Cache::Line *line = cache.lookup(op.addr, op.now);
        if (!line) {
            ++_stats.writeMisses;
            line = &fill(op.proc, op.addr, op.now);
        }
        line->stamps[widx] = op.stamp;
        // A lock-protected write may be followed by another lock owner's
        // write to the same word later this epoch: the copy can only be
        // vouched for up to the previous epoch (or not at all in epoch 0,
        // where no older tag value exists).
        if (!op.critical) {
            line->words[widx].tt = _epoch;
            line->words[widx].valid = true;
        } else if (_epoch > 0) {
            line->words[widx].tt = _epoch - 1;
            line->words[widx].valid = true;
        } else {
            line->words[widx].tt = 0;
            line->words[widx].valid = false;
        }
        _mem.write(op.addr, op.stamp);
        Cycles extra = 0;
        if (!_wbuf[op.proc].noteWrite(op.addr)) {
            ++_stats.writePackets;
            ++_stats.writeWords;
            _net.addTraffic(1, 1);
            // The value always lands in memory above; a lost write-through
            // packet only delays the buffered write's completion.
            extra = reliableSend(op.proc, op.now, "write-through");
        }
        res.stall = finishWrite(op.proc, op.now,
                                _cfg.writeLatencyCycles +
                                    _net.contentionDelay(1) + extra);
        return res;
    }

    ++_stats.reads;
    Cache::Line *line = cache.lookup(op.addr, op.now);
    maybeCorruptTag(line);

    switch (op.mark) {
      case MarkKind::Normal: {
        if (line && line->words[widx].valid) {
            ++_stats.readHits;
            res.hit = true;
            res.stall = _cfg.hitCycles;
            res.observed = line->stamps[widx];
            return res;
        }
        MissClass cls = line ? MissClass::TagReset // word lost to a reset
                             : _history.classifyAbsent(op.proc, op.addr);
        return miss(op, cls, widx);
      }

      case MarkKind::TimeRead: {
        ++_stats.timeReads;
        // Hardware caps the representable distance at 2^n - 1; clamping
        // down is the conservative direction.
        EpochId d = _cfg.tpiUseDistance
                        ? std::min<EpochId>(op.distance, 2 * _phase - 1)
                        : 0;
        EpochId floor = _epoch >= d ? _epoch - d : 0;
        if (line && line->words[widx].valid &&
            line->words[widx].tt >= floor)
        {
            // Proven fresh: promote so later Time-Reads keep hitting.
            if (_cfg.tpiPromoteOnHit)
                line->words[widx].tt = _epoch;
            ++_stats.readHits;
            ++_stats.timeReadHits;
            res.hit = true;
            res.stall = _cfg.hitCycles;
            res.observed = line->stamps[widx];
            return res;
        }
        MissClass cls;
        if (line && line->words[widx].valid) {
            cls = line->stamps[widx] == _mem.read(op.addr)
                      ? MissClass::Conservative
                      : MissClass::TrueShare;
        } else if (line) {
            cls = MissClass::TagReset;
        } else {
            cls = _history.classifyAbsent(op.proc, op.addr);
        }
        return miss(op, cls, widx);
      }

      case MarkKind::Bypass: {
        ++_stats.bypassReads;
        ++_stats.readMisses;
        MissClass cls;
        if (line && line->words[widx].valid) {
            cls = line->stamps[widx] == _mem.read(op.addr)
                      ? MissClass::Conservative
                      : MissClass::TrueShare;
        } else {
            cls = _history.classifyAbsent(op.proc, op.addr);
        }
        _stats.classify(cls);
        ++_stats.readPackets;
        ++_stats.readWords;
        _net.addTraffic(1, 1);
        res.hit = false;
        res.cls = cls;
        res.stall = wordFetchLatency() +
                    reliableSend(op.proc, op.now, "bypass word fetch");
        res.observed = _mem.read(op.addr);
        // Refresh the cached copy's value but not its timetag: the word
        // may be rewritten by another lock owner later this epoch.
        if (line)
            line->stamps[widx] = res.observed;
        _stats.missLatency.sample(double(res.stall));
        return res;
      }
    }
    panic("unreachable mark kind");
}

Cycles
TpiScheme::epochBoundary(EpochId new_epoch)
{
    CoherenceScheme::epochBoundary(new_epoch);
    for (WriteBuffer &wb : _wbuf)
        wb.drain();

    // Fault site mem.epoch: a processor's epoch-counter register was
    // corrupted during the epoch. The barrier broadcast of the new EC
    // exposes the mismatch; with per-word tags relative to a wrong EC
    // unusable, the processor resynchronizes by flash-invalidating its
    // cache and reloading the counter - fully recoverable, charged as a
    // reset-length stall on the barrier.
    Cycles recovery = 0;
    if (_fault && _fault->fire(fault::Site::MemEpochFlip)) {
        const ProcId p = static_cast<ProcId>(
            _fault->draw(fault::Site::MemEpochFlip) % _cfg.procs);
        flushCache(p);
        _fault->noteRecovered();
        ++_stats.coherencePackets; // EC reload broadcast
        _net.addTraffic(1, 0);
        recovery = _cfg.twoPhaseResetCycles;
    }

    // Two-phase reset: when EC enters a new phase, words last vouched for
    // a full wrap ago become ambiguous in n-bit arithmetic and are
    // invalidated (per word; the line stays for its younger words).
    if (new_epoch % _phase == 0 && new_epoch >= _phase) {
        EpochId cutoff = new_epoch - _phase;
        for (unsigned p = 0; p < _cfg.procs; ++p) {
            const unsigned wpl = _caches[p].wordsPerLine();
            _caches[p].forEachLine([&](Cache::Line &line) {
                bool any_valid = false;
                for (unsigned wi = 0; wi < wpl; ++wi) {
                    TpiWord &w = line.words[wi];
                    if (w.valid && w.tt < cutoff)
                        w.valid = false;
                    any_valid |= w.valid;
                }
                if (!any_valid) {
                    line.valid = false;
                    _history.record(p, line.base,
                                    LineEvent::InvalidatedTag);
                }
            });
        }
        ++_stats.tagResets;
        return _cfg.twoPhaseResetCycles + recovery;
    }
    return recovery;
}

void
TpiScheme::migrationDrain(ProcId p)
{
    _wbuf[p].drain();
}

void
TpiScheme::flushCache(ProcId p)
{
    _caches[p].forEachLine([&](Cache::Line &line) {
        _history.record(p, line.base, LineEvent::InvalidatedTag);
        line.valid = false;
    });
}

std::string
TpiScheme::postMortem() const
{
    std::string out = CoherenceScheme::postMortem();
    out += csprintf("  EC %d, phase length %d\n", _epoch, _phase);
    for (unsigned p = 0; p < _cfg.procs; ++p) {
        std::size_t lines = 0;
        _caches[p].forEachLine([&](const Cache::Line &) { ++lines; });
        out += csprintf("  proc %d: %d valid lines\n", p, lines);
    }
    return out;
}

} // namespace mem
} // namespace hscd
