/**
 * @file
 * Main-memory model.
 *
 * The simulator does not carry real data; every write deposits a unique
 * monotone "value stamp" so coherence can be checked exactly: a read that
 * observes an older stamp than the last write ordered before it has seen
 * stale data. MainMemory holds the stamp each word last received through
 * the memory system (write-through stores or write-backs).
 */

#ifndef HSCD_MEM_MEMORY_HH
#define HSCD_MEM_MEMORY_HH

#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace hscd {
namespace mem {

/** A write's identity; 0 means "never written". */
using ValueStamp = std::uint64_t;

class MainMemory
{
  public:
    explicit MainMemory(Addr bytes)
        : _words(bytes / 4 + 1, 0)
    {}

    // Hot loop: every simulated reference lands here at least once, so
    // release builds use unchecked indexing (addresses are produced by
    // Program::elementAddr, which already range-checks subscripts).
    ValueStamp
    read(Addr addr) const
    {
        hscd_dassert(addr / 4 < _words.size(),
                     "memory read at %d beyond %d words", addr,
                     _words.size());
        return _words[addr / 4];
    }

    void
    write(Addr addr, ValueStamp stamp)
    {
        hscd_dassert(addr / 4 < _words.size(),
                     "memory write at %d beyond %d words", addr,
                     _words.size());
        _words[addr / 4] = stamp;
    }

    std::size_t words() const { return _words.size(); }

  private:
    std::vector<ValueStamp> _words;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_MEMORY_HH
