/**
 * @file
 * BASE scheme: shared data is never cached; every shared reference is a
 * remote memory access. This is how Cray T3D-class machines behave when
 * the user does not manage coherence explicitly.
 */

#ifndef HSCD_MEM_BASE_SCHEME_HH
#define HSCD_MEM_BASE_SCHEME_HH

#include <vector>

#include "mem/coherence.hh"
#include "mem/write_buffer.hh"

namespace hscd {
namespace mem {

class BaseScheme final : public CoherenceScheme
{
  public:
    BaseScheme(const MachineConfig &cfg, MainMemory &memory,
               net::Network &network, stats::StatGroup *parent);

    AccessResult access(const MemOp &op) override;
    Cycles epochBoundary(EpochId new_epoch) override;
    void migrationDrain(ProcId p) override;

  private:
    std::vector<WriteBuffer> _wbuf;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_BASE_SCHEME_HH
