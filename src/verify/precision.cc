#include "verify/precision.hh"

#include <algorithm>

#include "common/log.hh"
#include "compiler/summary.hh"
#include "verify/dataflow.hh"

namespace hscd {
namespace verify {

using compiler::EpochGraph;
using compiler::EpochNode;
using compiler::Mark;
using compiler::MarkKind;
using compiler::RefOccur;
using compiler::markSeverity;
using compiler::unreachableDist;

namespace {

MarkKind
kindOf(ReqKind k)
{
    switch (k) {
      case ReqKind::None:
        return MarkKind::Normal;
      case ReqKind::TimeRead:
        return MarkKind::TimeRead;
      case ReqKind::Bypass:
        return MarkKind::Bypass;
    }
    return MarkKind::Bypass;
}

/**
 * MARK001: compiler marks strictly more severe than the oracle's
 * word-exact requirement. The replacement is the requirement itself.
 */
void
findOverConservative(const compiler::CompiledProgram &cp,
                     const OracleReport &oracle, PrecisionReport &out)
{
    const hir::Program &prog = cp.program;
    for (hir::RefId id = 0; id < prog.refCount(); ++id) {
        if (id >= oracle.required.size())
            break;
        const OracleRequirement &req = oracle.required[id];
        if (!req.exact)
            continue;
        const Mark &m = cp.marking.mark(id);
        if (m.reason == compiler::MarkReason::WriteRef)
            continue;
        const MarkKind want = kindOf(req.kind);
        if (markSeverity(m.kind, m.distance) <=
            markSeverity(want, req.distance))
            continue;
        // A requirement strictly below the compiler's mark can never be
        // Bypass (Bypass is the severity maximum).
        hscd_assert(want != MarkKind::Bypass,
                    "over-conservative vs a Bypass requirement");
        Tighten t;
        t.ref = id;
        t.from = m;
        t.toKind = want;
        t.toDistance = want == MarkKind::TimeRead ? req.distance : 0;
        out.overConservative.push_back(t);
    }
}

/**
 * MARK003: per-array min-distance solve. gens = node may-writes the
 * array, so the fixpoint under-approximates the true distance; a lower
 * bound above the window proves the clamp engaged.
 */
void
findSaturated(const compiler::CompiledProgram &cp,
              const LintOptions &opts, PrecisionReport &out)
{
    const hir::Program &prog = cp.program;
    const EpochGraph &g = cp.graph;
    if (opts.timetagBits >= 32)
        return;  // nothing saturates an effectively unbounded window
    const std::uint32_t window =
        (std::uint32_t{1} << opts.timetagBits) - 1;

    const std::size_t arrays = prog.arrays().size();
    // Interprocedural pre-filter: skip arrays no procedure may write —
    // the summaries are may-MOD, so "no" is a proof and the per-array
    // dataflow solve below cannot generate anything.
    std::vector<bool> written(arrays, false);
    for (hir::ArrayId a = 0; a < arrays; ++a)
        written[a] = compiler::summariesMayWrite(cp.summaries, prog, a);

    FlowGraph fg(g);
    std::vector<std::uint32_t> lower(prog.refCount(), unreachableDist);
    for (hir::ArrayId a = 0; a < arrays; ++a) {
        if (!written[a])
            continue;
        std::vector<bool> gens(g.nodes().size(), false);
        bool reads_a = false;
        for (const EpochNode &n : g.nodes()) {
            for (const RefOccur &occ : n.refs) {
                if (occ.stmt->array != a)
                    continue;
                if (occ.stmt->isWrite)
                    gens[n.id] = true;
                else
                    reads_a = true;
            }
        }
        if (!reads_a)
            continue;
        MinDistanceDomain dom(gens);
        auto res = solveDataflow(fg, FlowDir::Forward, dom);
        for (const EpochNode &n : g.nodes()) {
            // A same-node write may land in the same dynamic epoch, so
            // the per-occurrence bound is 0 there, else the entry value.
            const std::uint32_t at = gens[n.id] ? 0 : res.in[n.id];
            for (const RefOccur &occ : n.refs)
                if (!occ.stmt->isWrite && occ.stmt->array == a)
                    lower[occ.ref] = std::min(lower[occ.ref], at);
        }
    }

    for (hir::RefId id = 0; id < prog.refCount(); ++id) {
        const Mark &m = cp.marking.mark(id);
        if (m.kind != MarkKind::TimeRead || lower[id] <= window)
            continue;
        Saturation s;
        s.ref = id;
        s.markedDistance = m.distance;
        s.provenLower = lower[id];
        s.window = window;
        out.saturated.push_back(s);
    }
}

} // namespace

PrecisionReport
precisionAnalyze(const compiler::CompiledProgram &cp,
                 const LintOptions &opts, const OracleReport &oracle)
{
    PrecisionReport rep;
    findOverConservative(cp, oracle, rep);
    findSaturated(cp, opts, rep);
    return rep;
}

void
tightenMarking(compiler::CompiledProgram &cp, const PrecisionReport &rep)
{
    for (const Tighten &t : rep.overConservative) {
        Mark m = t.from;
        m.kind = t.toKind;
        m.distance = t.toKind == MarkKind::TimeRead ? t.toDistance : 0;
        cp.marking.overrideMark(t.ref, m);
    }
    cp.marking.recomputeStats(cp.program);
    // The epoch-stream cache bakes marks into its flat streams; a stale
    // cache would make post-tighten simulations replay the old marking.
    cp.simCache.reset();
}

} // namespace verify
} // namespace hscd
