#include "verify/oracle.hh"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/strutil.hh"
#include "verify/dataflow.hh"

namespace hscd {
namespace verify {

using compiler::MarkKind;
using hir::ArrayRefStmt;
using hir::CallStmt;
using hir::CriticalStmt;
using hir::IfUnknownStmt;
using hir::IntExpr;
using hir::LoopStmt;
using hir::Program;
using hir::Range;
using hir::Stmt;
using hir::StmtKind;
using hir::StmtList;

std::string
OracleRequirement::str() const
{
    switch (kind) {
      case ReqKind::None:
        return "normal-ok";
      case ReqKind::TimeRead:
        return csprintf("time-read(d<=%d)", distance);
      case ReqKind::Bypass:
        return "bypass";
    }
    return "?";
}

namespace {

/** Task label meaning "several (or unknowable) tasks touch this word". */
constexpr std::int64_t taskTop = std::numeric_limits<std::int64_t>::min();

constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/**
 * The words a reference occurrence may touch over the full iteration
 * space of its enclosing loops, each labelled with the DOALL task that
 * touches it (taskTop when several tasks, or an unknowable one, do).
 */
struct Footprint
{
    bool whole = false;   ///< widened to the whole array
    bool approx = false;  ///< over-approximate (unknown subscripts)
    /**
     * Task labels are unknowable (LabelMode::Top): taskTop entries mean
     * "maybe several tasks", not "provably several". When false, every
     * taskTop label came from a concrete-label collision.
     */
    bool labelTop = false;
    /**
     * Top-mode refinement: the enclosing DOALL provably runs >= 2
     * tasks, so every word here is touched by at least tasks
     * multiTaskA and multiTaskB (used by the proven-only write-write
     * conflict scan even though per-word labels are taskTop).
     */
    bool multiTask = false;
    std::int64_t multiTaskA = 0;
    std::int64_t multiTaskB = 0;
    std::unordered_map<std::uint64_t, std::int64_t> words;

    /** First word where two concrete task labels collided. */
    struct Clash
    {
        std::uint64_t word = 0;
        std::int64_t a = 0;
        std::int64_t b = 0;
    };
    std::optional<Clash> clash;

    void
    addWord(std::uint64_t w, std::int64_t label)
    {
        auto [it, inserted] = words.try_emplace(w, label);
        if (!inserted && it->second != label) {
            if (it->second != taskTop && label != taskTop &&
                (!clash || w < clash->word))
            {
                clash = Clash{w, std::min(it->second, label),
                              std::max(it->second, label)};
            }
            it->second = taskTop;
        }
    }
};

/** May the two footprints (same array) share a word? */
bool
mayOverlap(const Footprint &a, const Footprint &b)
{
    if (a.whole || b.whole)
        return true;
    const Footprint &small = a.words.size() <= b.words.size() ? a : b;
    const Footprint &big = &small == &a ? b : a;
    for (const auto &[w, label] : small.words)
        if (big.words.count(w))
            return true;
    return false;
}

/** May two same-DOALL-node footprints collide across tasks on a word? */
bool
mayCollide(const Footprint &r, const Footprint &w)
{
    if (r.whole || w.whole)
        return true;
    const Footprint &small = r.words.size() <= w.words.size() ? r : w;
    const Footprint &big = &small == &r ? w : r;
    for (const auto &[word, la] : small.words) {
        auto it = big.words.find(word);
        if (it == big.words.end())
            continue;
        if (la == taskTop || it->second == taskTop || la != it->second)
            return true;
    }
    return false;
}

/** One enclosing loop of an occurrence, in source order. */
struct OLoop
{
    std::string var;
    IntExpr lo;
    IntExpr hi;
    std::int64_t step = 1;
    bool parallel = false;

    bool
    operator==(const OLoop &o) const
    {
        return var == o.var && lo == o.lo && hi == o.hi &&
               step == o.step && parallel == o.parallel;
    }
};

struct OOcc
{
    hir::RefId ref = hir::invalidRef;
    const ArrayRefStmt *stmt = nullptr;
    bool inCritical = false;
    /** Under a non-boundary IfUnknown: may not execute with its node. */
    bool conditional = false;
    bool covered = false;
    /** Enclosing loops at the occurrence, outermost first. */
    std::vector<OLoop> loops;
    Footprint fp;
};

struct ONode
{
    std::uint32_t id = 0;
    bool parallel = false;
    std::string parallelVar;
    bool hasSync = false;
    std::vector<OOcc> refs;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> succs;
};

/**
 * Mirror of the compiler's intra-task coverage set: locations the
 * current task has definitely written, by structural subscript
 * equality, with loop-exit and branch-join filtering.
 */
class OCover
{
  public:
    void
    add(hir::ArrayId array, const std::vector<IntExpr> &subs)
    {
        for (const IntExpr &e : subs)
            if (e.hasUnknown())
                return;
        if (!covers(array, subs))
            _writes.emplace_back(array, subs);
    }

    bool
    covers(hir::ArrayId array, const std::vector<IntExpr> &subs) const
    {
        for (const auto &[a, s] : _writes)
            if (a == array && s == subs)
                return true;
        return false;
    }

    void clear() { _writes.clear(); }
    std::size_t size() const { return _writes.size(); }

    void
    filterLoopExit(std::size_t snapshot, const std::string &var,
                   bool at_least_one_trip)
    {
        std::size_t keep = snapshot;
        for (std::size_t i = snapshot; i < _writes.size(); ++i) {
            bool uses_var = false;
            for (const IntExpr &e : _writes[i].second)
                if (e.coeff(var) != 0)
                    uses_var = true;
            if (!uses_var && at_least_one_trip) {
                if (keep != i)
                    _writes[keep] = std::move(_writes[i]);
                ++keep;
            }
        }
        _writes.resize(keep);
    }

    void
    intersectWith(const OCover &o)
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < _writes.size(); ++i) {
            if (o.covers(_writes[i].first, _writes[i].second)) {
                if (keep != i)
                    _writes[keep] = std::move(_writes[i]);
                ++keep;
            }
        }
        _writes.resize(keep);
    }

  private:
    std::vector<std::pair<hir::ArrayId, std::vector<IntExpr>>> _writes;
};

/**
 * Re-derives the epoch partitioning from the HIR (virtual inlining,
 * DOALLs bracketed by boundaries, boundary-spanning serial loops with
 * back edges and zero-trip bypasses) and attaches enumerated word
 * footprints to every reference occurrence.
 */
class OracleBuilder
{
  public:
    OracleBuilder(const Program &prog, std::uint64_t word_cap)
        : _prog(prog), _cap(word_cap), _env(prog.params())
    {
        _procBoundary.assign(prog.procedures().size(), -1);
        for (const auto &[name, value] : prog.params().vars())
            _ranges[name] = Range{value, value};
    }

    std::vector<ONode>
    run()
    {
        _cur = newNode(false);
        walk(_prog.main().body);
        applyPostFilters();
        return std::move(_nodes);
    }

  private:
    std::uint32_t
    newNode(bool parallel, const std::string &var = "")
    {
        ONode n;
        n.id = static_cast<std::uint32_t>(_nodes.size());
        n.parallel = parallel;
        n.parallelVar = var;
        _nodes.push_back(std::move(n));
        return _nodes.back().id;
    }

    void
    link(std::uint32_t from, std::uint32_t to, std::uint32_t w)
    {
        _nodes[from].succs.emplace_back(to, w);
    }

    bool
    procHasBoundary(hir::ProcIndex p)
    {
        if (_procBoundary[p] >= 0)
            return _procBoundary[p] != 0;
        _procBoundary[p] = 0;
        bool b = listHasBoundary(_prog.procedures()[p].body);
        _procBoundary[p] = b ? 1 : 0;
        return b;
    }

    bool
    listHasBoundary(const StmtList &body)
    {
        for (const auto &s : body) {
            switch (s->kind()) {
              case StmtKind::Loop: {
                const auto &l = static_cast<const LoopStmt &>(*s);
                if (l.parallel || listHasBoundary(l.body))
                    return true;
                break;
              }
              case StmtKind::Barrier:
                return true;
              case StmtKind::IfUnknown: {
                const auto &br = static_cast<const IfUnknownStmt &>(*s);
                if (listHasBoundary(br.thenBody) ||
                    listHasBoundary(br.elseBody))
                    return true;
                break;
              }
              case StmtKind::Call:
                if (procHasBoundary(
                        static_cast<const CallStmt &>(*s).callee))
                    return true;
                break;
              case StmtKind::Critical:
                if (listHasBoundary(
                        static_cast<const CriticalStmt &>(*s).body))
                    return true;
                break;
              default:
                break;
            }
        }
        return false;
    }

    std::optional<Range>
    rangeOf(const IntExpr &e) const
    {
        return e.range(_ranges);
    }

    bool
    atLeastOneTrip(const LoopStmt &l) const
    {
        auto lo = rangeOf(l.lo);
        auto hi = rangeOf(l.hi);
        return lo && hi && hi->lo >= lo->hi;
    }

    void
    pushLoopVar(const LoopStmt &l)
    {
        _loops.push_back(OLoop{l.var, l.lo, l.hi, l.step, l.parallel});
        auto it = _ranges.find(l.var);
        _rangeSaves.emplace_back(
            l.var, it == _ranges.end() ? std::nullopt
                                       : std::optional<Range>(it->second));
        auto lo = rangeOf(l.lo);
        auto hi = rangeOf(l.hi);
        if (lo && hi && lo->lo <= hi->hi)
            _ranges[l.var] = Range{lo->lo, hi->hi};
        else
            _ranges.erase(l.var);
    }

    void
    popLoopVar()
    {
        _loops.pop_back();
        auto [var, saved] = std::move(_rangeSaves.back());
        _rangeSaves.pop_back();
        if (saved)
            _ranges[var] = *saved;
        else
            _ranges.erase(var);
    }

    // ---- footprint enumeration -------------------------------------

    /** How this occurrence's words map to DOALL tasks. */
    enum class LabelMode
    {
        Enumerated,  ///< parallel index is one of the enumerated loops
        Fixed,       ///< every touch is by one known task
        Top,         ///< several / unknowable tasks
    };

    Footprint
    footprintFor(const ArrayRefStmt &ref)
    {
        Footprint fp;
        const hir::ArrayDecl &decl = _prog.array(ref.array);
        const std::string &par = _nodes[_cur].parallelVar;
        const bool parallel_node = _nodes[_cur].parallel;

        // Variables the subscripts depend on, transitively through the
        // bounds of enclosing loops. Parameters are concrete constants
        // and never enumerated.
        std::set<std::string> relevant;
        auto add_expr_vars = [&](const IntExpr &e, bool &ok) {
            for (const std::string &v : e.variables()) {
                if (_prog.params().lookup(v))
                    continue;
                bool is_loop = false;
                for (const OLoop &l : _loops)
                    if (l.var == v)
                        is_loop = true;
                if (!is_loop) {
                    ok = false; // unbound variable: HIR001 territory
                    return;
                }
                relevant.insert(v);
            }
        };
        bool ok = true;
        for (const IntExpr &s : ref.subs)
            add_expr_vars(s, ok);
        bool changed = true;
        while (ok && changed) {
            changed = false;
            for (const OLoop &l : _loops) {
                if (!relevant.count(l.var))
                    continue;
                std::size_t before = relevant.size();
                add_expr_vars(l.lo, ok);
                add_expr_vars(l.hi, ok);
                if (relevant.size() != before)
                    changed = true;
            }
        }
        if (!ok) {
            fp.whole = true;
            return fp;
        }

        // The loops to enumerate, outermost first. Bail out to
        // whole-array on shadowed names (enumeration would corrupt the
        // environment) or unanalyzable bounds.
        std::vector<const OLoop *> en;
        std::set<std::string> seen;
        for (const OLoop &l : _loops) {
            if (!relevant.count(l.var))
                continue;
            if (!seen.insert(l.var).second ||
                _prog.params().lookup(l.var) || l.lo.hasUnknown() ||
                l.hi.hasUnknown())
            {
                fp.whole = true;
                return fp;
            }
            en.push_back(&l);
        }

        // Task labelling for same-epoch cross-task analysis.
        LabelMode mode = LabelMode::Fixed;
        std::int64_t fixed_label = 0;
        if (parallel_node) {
            if (relevant.count(par)) {
                mode = LabelMode::Enumerated;
            } else {
                // The subscripts ignore the DOALL index: with more than
                // one task every task touches the same words.
                mode = LabelMode::Top;
                for (const OLoop &l : _loops) {
                    if (!l.parallel || l.var != par)
                        continue;
                    auto lo = rangeOf(l.lo);
                    auto hi = rangeOf(l.hi);
                    if (lo && hi && lo->lo == lo->hi &&
                        hi->lo == hi->hi && lo->lo + l.step > hi->hi)
                    {
                        mode = LabelMode::Fixed; // provably single trip
                        fixed_label = lo->lo;
                    } else if (lo && hi && lo->lo == lo->hi &&
                               hi->lo == hi->hi &&
                               lo->lo + l.step <= hi->hi)
                    {
                        // Provably >= 2 tasks, each touching every word.
                        fp.multiTask = true;
                        fp.multiTaskA = lo->lo;
                        fp.multiTaskB = lo->lo + l.step;
                    }
                    break;
                }
                fp.labelTop = mode == LabelMode::Top;
            }
        }

        std::uint64_t budget = _cap;
        const std::uint64_t base_word = decl.base / hir::wordBytes;

        // Per-dimension strides, column-major like Program::elementAddr.
        std::vector<std::int64_t> stride(decl.dims.size());
        std::int64_t mult = 1;
        for (std::size_t d = 0; d < decl.dims.size(); ++d) {
            stride[d] = mult;
            mult *= decl.dims[d];
        }

        // Emit the element(s) for the current environment bindings;
        // dimensions with unknown subscripts expand to the whole extent.
        auto emit = [&]() -> bool {
            std::vector<std::int64_t> idx(ref.subs.size(), 0);
            std::vector<std::size_t> unknown_dims;
            for (std::size_t d = 0; d < ref.subs.size(); ++d) {
                const IntExpr &s = ref.subs[d];
                if (s.hasUnknown()) {
                    unknown_dims.push_back(d);
                    continue;
                }
                std::int64_t v = s.eval(_env);
                if (v < 0 ||
                    (d < decl.dims.size() && v >= decl.dims[d]))
                    return true; // out of bounds: touches nothing legal
                idx[d] = v;
            }
            if (!unknown_dims.empty())
                fp.approx = true;
            std::int64_t label = fixed_label;
            if (mode == LabelMode::Top)
                label = taskTop;
            else if (mode == LabelMode::Enumerated)
                label = *_env.lookup(par);

            // Cross product over the unknown dimensions.
            std::vector<std::int64_t> uv(unknown_dims.size(), 0);
            while (true) {
                for (std::size_t k = 0; k < unknown_dims.size(); ++k)
                    idx[unknown_dims[k]] = uv[k];
                std::int64_t linear = 0;
                for (std::size_t d = 0; d < idx.size(); ++d)
                    linear += idx[d] * stride[d];
                if (budget == 0)
                    return false;
                --budget;
                fp.addWord(base_word + std::uint64_t(linear), label);
                std::size_t k = 0;
                for (; k < unknown_dims.size(); ++k) {
                    if (++uv[k] < decl.dims[unknown_dims[k]])
                        break;
                    uv[k] = 0;
                }
                if (k == unknown_dims.size())
                    break;
                if (unknown_dims.empty())
                    break;
            }
            return true;
        };

        std::function<bool(std::size_t)> rec =
            [&](std::size_t i) -> bool {
            if (i == en.size())
                return emit();
            const OLoop &l = *en[i];
            const std::int64_t lo = l.lo.eval(_env);
            const std::int64_t hi = l.hi.eval(_env);
            for (std::int64_t v = lo; v <= hi; v += l.step) {
                _env.bind(l.var, v);
                bool cont = rec(i + 1);
                _env.unbind(l.var);
                if (!cont)
                    return false;
            }
            return true;
        };

        if (!rec(0)) {
            fp.whole = true;
            fp.words.clear();
        }
        return fp;
    }

    // ---- structural walk (mirrors the compiler's graph builder) ----

    void
    addRef(const ArrayRefStmt &ref)
    {
        OOcc occ;
        occ.ref = ref.id;
        occ.stmt = &ref;
        occ.inCritical = _criticalDepth > 0;
        occ.conditional = _condDepth > 0;
        occ.loops = _loops;
        occ.fp = footprintFor(ref);
        if (ref.isWrite) {
            if (_criticalDepth > 0) {
                _criticalCover.add(ref.array, ref.subs);
                Footprint &cw = _nodeCriticalWrites[_cur][ref.array];
                cw.whole |= occ.fp.whole;
                for (const auto &[w, label] : occ.fp.words)
                    cw.addWord(w, label);
            } else {
                _cover.add(ref.array, ref.subs);
            }
        } else {
            occ.covered = _criticalDepth > 0
                              ? _criticalCover.covers(ref.array, ref.subs)
                              : _cover.covers(ref.array, ref.subs);
        }
        _nodes[_cur].refs.push_back(std::move(occ));
    }

    void
    walk(const StmtList &body)
    {
        for (const auto &s : body)
            walkStmt(*s);
    }

    void
    walkStmt(const Stmt &s)
    {
        switch (s.kind()) {
          case StmtKind::ArrayRef:
            addRef(static_cast<const ArrayRefStmt &>(s));
            break;
          case StmtKind::Compute:
            break;
          case StmtKind::Loop:
            walkLoop(static_cast<const LoopStmt &>(s));
            break;
          case StmtKind::IfUnknown:
            walkIf(static_cast<const IfUnknownStmt &>(s));
            break;
          case StmtKind::Call:
            walk(_prog.procedures()
                     [static_cast<const CallStmt &>(s).callee].body);
            break;
          case StmtKind::Critical: {
            ++_criticalDepth;
            if (_criticalDepth == 1)
                _criticalCover.clear();
            walk(static_cast<const CriticalStmt &>(s).body);
            --_criticalDepth;
            if (_criticalDepth == 0)
                _criticalCover.clear();
            break;
          }
          case StmtKind::Barrier: {
            std::uint32_t next = newNode(false);
            link(_cur, next, 1);
            _cur = next;
            _cover.clear();
            break;
          }
          case StmtKind::Sync:
            _nodes[_cur].hasSync = true;
            break;
        }
    }

    void
    walkLoop(const LoopStmt &l)
    {
        if (l.parallel && !_inParallel) {
            std::uint32_t p = newNode(true, l.var);
            link(_cur, p, 1);
            _cur = p;
            pushLoopVar(l);
            _cover.clear();
            _inParallel = true;
            walk(l.body);
            _inParallel = false;
            _cover.clear();
            popLoopVar();
            std::uint32_t after = newNode(false);
            link(p, after, 1);
            _cur = after;
            return;
        }

        const bool boundary = !_inParallel && listHasBoundary(l.body);
        if (!boundary) {
            // A possibly-zero-trip loop makes its refs conditional for
            // the must-execute (domination) analysis. Entry bounds are
            // evaluated in the enclosing environment.
            const bool may_skip = !atLeastOneTrip(l);
            if (may_skip)
                ++_condDepth;
            pushLoopVar(l);
            std::size_t snapshot = _cover.size();
            walk(l.body);
            _cover.filterLoopExit(snapshot, l.var, atLeastOneTrip(l));
            popLoopVar();
            if (may_skip)
                --_condDepth;
            return;
        }

        std::uint32_t pre = _cur;
        std::uint32_t head = newNode(false);
        link(pre, head, 0);
        _cur = head;
        _cover.clear();
        pushLoopVar(l);
        walk(l.body);
        popLoopVar();
        std::uint32_t tail = _cur;
        link(tail, head, 0);
        std::uint32_t exit = newNode(false);
        link(tail, exit, 0);
        if (!atLeastOneTrip(l))
            link(pre, exit, 0);
        _cur = exit;
        _cover.clear();
    }

    void
    walkIf(const IfUnknownStmt &br)
    {
        const bool boundary =
            !_inParallel && (listHasBoundary(br.thenBody) ||
                             listHasBoundary(br.elseBody));
        if (!boundary) {
            OCover entry = _cover;
            ++_condDepth;
            walk(br.thenBody);
            OCover then_out = std::move(_cover);
            _cover = entry;
            walk(br.elseBody);
            --_condDepth;
            _cover.intersectWith(then_out);
            return;
        }

        std::uint32_t base = _cur;
        _cover.clear();

        std::uint32_t then_entry = newNode(false);
        link(base, then_entry, 0);
        _cur = then_entry;
        walk(br.thenBody);
        std::uint32_t then_out = _cur;

        std::uint32_t else_out = base;
        if (!br.elseBody.empty()) {
            std::uint32_t else_entry = newNode(false);
            link(base, else_entry, 0);
            _cur = else_entry;
            _cover.clear();
            walk(br.elseBody);
            else_out = _cur;
        }

        std::uint32_t join = newNode(false);
        link(then_out, join, 0);
        link(else_out, join, 0);
        _cur = join;
        _cover.clear();
    }

    void
    applyPostFilters()
    {
        // Lock-serialized writers may intervene between a covering write
        // and its read: kill coverage where a same-node critical write
        // overlaps.
        for (auto &[node, per_array] : _nodeCriticalWrites) {
            for (OOcc &occ : _nodes[node].refs) {
                if (occ.stmt->isWrite || !occ.covered || occ.inCritical)
                    continue;
                auto it = per_array.find(occ.stmt->array);
                if (it != per_array.end() &&
                    mayOverlap(occ.fp, it->second))
                    occ.covered = false;
            }
        }

        // Post/wait epochs: another task's ordered write may land
        // between the covering write and the read.
        for (ONode &node : _nodes) {
            if (!node.hasSync || !node.parallel)
                continue;
            for (OOcc &occ : node.refs) {
                if (occ.stmt->isWrite || !occ.covered)
                    continue;
                for (const OOcc &w : node.refs) {
                    if (!w.stmt->isWrite ||
                        w.stmt->array != occ.stmt->array)
                        continue;
                    if (mayCollide(occ.fp, w.fp)) {
                        occ.covered = false;
                        break;
                    }
                }
            }
        }
    }

    const Program &_prog;
    const std::uint64_t _cap;
    hir::Env _env; ///< parameters; loop vars bound during enumeration
    std::vector<ONode> _nodes;
    std::uint32_t _cur = 0;
    std::vector<OLoop> _loops;
    std::map<std::string, Range> _ranges;
    std::vector<std::pair<std::string, std::optional<Range>>> _rangeSaves;
    int _criticalDepth = 0;
    int _condDepth = 0;
    bool _inParallel = false;
    OCover _cover;
    OCover _criticalCover;
    std::vector<int> _procBoundary;
    std::map<std::uint32_t, std::map<hir::ArrayId, Footprint>>
        _nodeCriticalWrites;
};

/** All-pairs min boundary distance, 0-1 BFS (same as the epoch graph). */
std::vector<std::vector<std::uint32_t>>
allDistances(const std::vector<ONode> &nodes)
{
    const std::size_t n = nodes.size();
    std::vector<std::vector<std::uint32_t>> dist(
        n, std::vector<std::uint32_t>(n, kUnreachable));
    for (std::size_t src = 0; src < n; ++src) {
        auto &d = dist[src];
        std::deque<std::uint32_t> dq;
        d[src] = 0;
        dq.push_back(static_cast<std::uint32_t>(src));
        while (!dq.empty()) {
            std::uint32_t u = dq.front();
            dq.pop_front();
            for (const auto &[to, w] : nodes[u].succs) {
                std::uint32_t nd = d[u] + w;
                if (nd < d[to]) {
                    d[to] = nd;
                    if (w == 0)
                        dq.push_front(to);
                    else
                        dq.push_back(to);
                }
            }
        }
    }
    return dist;
}

std::uint32_t
cycleDistance(const std::vector<ONode> &nodes,
              const std::vector<std::vector<std::uint32_t>> &dist,
              std::uint32_t n)
{
    std::uint32_t best = kUnreachable;
    for (const auto &[to, w] : nodes[n].succs) {
        std::uint32_t back = dist[to][n];
        if (back != kUnreachable && w + back < best)
            best = w + back;
    }
    return best;
}

/** Severity scalar identical to the marking pass's join order. */
std::uint64_t
severityOf(MarkKind kind, std::uint32_t distance)
{
    switch (kind) {
      case MarkKind::Normal:
        return 0;
      case MarkKind::TimeRead:
        return std::uint64_t{1} +
               (std::uint64_t{1} << 32) / (std::uint64_t{distance} + 1);
      case MarkKind::Bypass:
        return ~std::uint64_t{0};
    }
    return 0;
}

MarkKind
kindOf(ReqKind k)
{
    switch (k) {
      case ReqKind::None:
        return MarkKind::Normal;
      case ReqKind::TimeRead:
        return MarkKind::TimeRead;
      case ReqKind::Bypass:
        return MarkKind::Bypass;
    }
    return MarkKind::Normal;
}

} // namespace

OracleReport
oracleAnalyze(const compiler::CompiledProgram &cp, const LintOptions &opts)
{
    const Program &prog = cp.program;
    OracleReport report;
    report.required.assign(prog.refCount(), OracleRequirement{});

    OracleBuilder builder(prog, opts.oracleWordCap);
    const std::vector<ONode> nodes = builder.run();
    const auto dist = allDistances(nodes);

    // Flat occurrence lists, with owning node.
    struct Flat
    {
        const OOcc *occ;
        const ONode *node;
    };
    std::vector<Flat> reads, writes;
    for (const ONode &n : nodes) {
        for (const OOcc &occ : n.refs) {
            if (occ.stmt->isWrite)
                writes.push_back({&occ, &n});
            else
                reads.push_back({&occ, &n});
        }
    }

    // Arrays with any widened or over-approximate write footprint
    // cannot prove over-marking.
    std::map<hir::ArrayId, bool> whole_write;
    for (const Flat &w : writes)
        whole_write[w.occ->stmt->array] |=
            w.occ->fp.whole || w.occ->fp.approx;

    // The requirement clamp is a property of the verified machine (the
    // widest encodable Time-Read operand), NOT the compiler's own
    // AnalysisOptions::maxDistance budget: a marking clamped by a
    // smaller compiler budget is over-conservative for this machine,
    // and MARK001/--tighten may provably relax it up to the window.
    const std::uint32_t max_encodable =
        opts.timetagBits >= 32
            ? ~std::uint32_t{0}
            : (std::uint32_t{1} << opts.timetagBits) - 1;
    const std::uint32_t clamp = max_encodable;

    std::vector<std::uint64_t> joined_sev(prog.refCount(), 0);
    std::vector<bool> assigned(prog.refCount(), false);
    std::vector<bool> exact(prog.refCount(), true);

    for (const Flat &r : reads) {
        OracleRequirement req;
        bool occ_exact = !r.occ->fp.whole && !r.occ->fp.approx &&
                         !whole_write[r.occ->stmt->array];
        if (r.occ->covered) {
            req.kind = ReqKind::None;
        } else if (r.occ->inCritical) {
            req.kind = ReqKind::Bypass;
        } else {
            std::uint32_t best = kUnreachable;
            hir::RefId best_threat = hir::invalidRef;
            bool any = false;
            bool critical_same = false;
            bool sync_same = false;
            for (const Flat &w : writes) {
                if (w.occ->stmt->array != r.occ->stmt->array)
                    continue;
                if (!mayOverlap(r.occ->fp, w.occ->fp))
                    continue;
                // Affinity is a property of the verified machine (the
                // lint option), not of how boldly the compiler marked.
                if (opts.serialAffinity && !w.node->parallel &&
                    !r.node->parallel)
                    continue;

                std::uint32_t d = kUnreachable;
                if (w.node == r.node) {
                    if (r.node->parallel &&
                        (w.occ->inCritical ||
                         mayCollide(r.occ->fp, w.occ->fp)))
                    {
                        d = 0;
                        if (w.occ->inCritical)
                            critical_same = true;
                        if (r.node->hasSync)
                            sync_same = true;
                    }
                    d = std::min(d,
                                 cycleDistance(nodes, dist, r.node->id));
                } else {
                    d = dist[w.node->id][r.node->id];
                }
                if (d == kUnreachable)
                    continue;
                any = true;
                if (d < best) {
                    best = d;
                    best_threat = w.occ->ref;
                }
            }
            if (!any) {
                req.kind = ReqKind::None;
            } else if ((critical_same || sync_same) && best == 0) {
                req.kind = ReqKind::Bypass;
                req.threat = best_threat;
                req.threatDistance = 0;
            } else {
                req.kind = ReqKind::TimeRead;
                req.distance = std::min(best, clamp);
                req.threat = best_threat;
                req.threatDistance = best;
            }
        }

        const hir::RefId id = r.occ->ref;
        if (!occ_exact)
            exact[id] = false;
        const std::uint64_t sev = severityOf(kindOf(req.kind),
                                             req.distance);
        if (!assigned[id] || sev > joined_sev[id]) {
            report.required[id] = req;
            report.required[id].exact = exact[id];
            joined_sev[id] = sev;
            assigned[id] = true;
        }
        report.required[id].exact = exact[id];
    }

    // Proven same-epoch cross-task write-write conflicts (GRAPH004).
    // Proven-only discipline: a conflict needs word-exact footprints
    // and either two distinct concrete task labels on one word or a
    // provably multi-trip DOALL whose writes ignore the task index.
    // Lock-serialized writes and post/wait-ordered epochs are excluded:
    // there the interleaving is synchronized, not racy.
    std::set<std::tuple<hir::RefId, hir::RefId, std::uint64_t>> seen_wc;
    auto add_conflict = [&](const OOcc &a, const OOcc &b,
                            std::uint64_t word, std::int64_t ta,
                            std::int64_t tb) {
        if (!seen_wc.insert({a.ref, b.ref, word}).second)
            return;
        WriteConflict wc;
        wc.a = a.ref;
        wc.b = b.ref;
        wc.array = a.stmt->array;
        wc.word = word;
        wc.taskA = std::min(ta, tb);
        wc.taskB = std::max(ta, tb);
        report.writeConflicts.push_back(wc);
    };
    for (const ONode &n : nodes) {
        if (!n.parallel || n.hasSync)
            continue;
        std::vector<const OOcc *> ws;
        for (const OOcc &occ : n.refs) {
            const Footprint &fp = occ.fp;
            if (!occ.stmt->isWrite || occ.inCritical || fp.whole ||
                fp.approx || (fp.labelTop && !fp.multiTask))
                continue;
            ws.push_back(&occ);
            if (fp.clash) {
                add_conflict(occ, occ, fp.clash->word, fp.clash->a,
                             fp.clash->b);
            } else if (fp.multiTask && !fp.words.empty()) {
                std::uint64_t w = ~std::uint64_t{0};
                for (const auto &[word, label] : fp.words)
                    w = std::min(w, word);
                add_conflict(occ, occ, w, fp.multiTaskA, fp.multiTaskB);
            }
        }
        for (std::size_t i = 0; i < ws.size(); ++i) {
            for (std::size_t j = i + 1; j < ws.size(); ++j) {
                const Footprint &fa = ws[i]->fp;
                const Footprint &fb = ws[j]->fp;
                if (ws[i]->stmt->array != ws[j]->stmt->array)
                    continue;
                const Footprint &small =
                    fa.words.size() <= fb.words.size() ? fa : fb;
                const Footprint &big = &small == &fa ? fb : fa;
                std::uint64_t best = ~std::uint64_t{0};
                std::int64_t ta = 0, tb = 0;
                for (const auto &[word, la] : small.words) {
                    auto it = big.words.find(word);
                    if (it == big.words.end() || word >= best)
                        continue;
                    const std::int64_t lb = it->second;
                    if (fa.multiTask || fb.multiTask) {
                        const Footprint &m = fa.multiTask ? fa : fb;
                        best = word;
                        ta = m.multiTaskA;
                        tb = m.multiTaskB;
                    } else if (la != taskTop && lb != taskTop &&
                               la != lb)
                    {
                        best = word;
                        ta = la;
                        tb = lb;
                    }
                }
                if (best != ~std::uint64_t{0})
                    add_conflict(*ws[i], *ws[j], best, ta, tb);
            }
        }
    }

    // Redundant-marking domination (MARK002 input): a Time-Read whose
    // every occurrence is provably preceded, within the same epoch
    // instance, by a same-task non-conditional Time-Read covering its
    // words at an equal-or-stricter distance. Cross-node precedence is
    // established by the must-availability dataflow (facts die at epoch
    // boundaries and at post/wait nodes); intra-node precedence by walk
    // order plus either lockstep identity (identical loop nests and
    // subscripts) or completed-subtree containment (no shared serial
    // loop, word containment per task).
    {
        auto mark_of = [&](hir::RefId id) -> const compiler::Mark & {
            return cp.marking.mark(id);
        };

        struct Cand
        {
            const OOcc *occ;
            const ONode *node;
            std::size_t idx;
        };
        std::vector<Cand> cands;
        std::vector<std::vector<std::uint32_t>> gens(nodes.size());
        std::vector<bool> kills(nodes.size(), false);
        std::vector<std::vector<compiler::EpochEdge>> adj(nodes.size());
        for (const ONode &n : nodes) {
            kills[n.id] = n.hasSync;
            for (const auto &[to, w] : n.succs)
                adj[n.id].push_back(compiler::EpochEdge{to, w});
            if (n.hasSync)
                continue;
            for (std::size_t i = 0; i < n.refs.size(); ++i) {
                const OOcc &occ = n.refs[i];
                if (occ.stmt->isWrite || occ.conditional ||
                    occ.inCritical || occ.fp.whole || occ.fp.approx ||
                    mark_of(occ.ref).kind != MarkKind::TimeRead)
                    continue;
                gens[n.id].push_back(
                    static_cast<std::uint32_t>(cands.size()));
                cands.push_back({&occ, &n, i});
            }
        }
        FlowGraph fg(std::move(adj));
        EpochFactsDomain dom(cands.size(), gens, kills);
        auto avail = solveDataflow(fg, FlowDir::Forward, dom);

        // Task-aware word containment: every word the target touches is
        // touched by the dominator from the same task (or from every
        // task, when the dominator's subscripts ignore the DOALL index).
        auto dominates_words = [](const Footprint &f1,
                                  const Footprint &f2) {
            for (const auto &[w, l2] : f2.words) {
                auto it = f1.words.find(w);
                if (it == f1.words.end())
                    return false;
                if (f1.labelTop)
                    continue;
                if (l2 == taskTop || it->second != l2)
                    return false;
            }
            return true;
        };

        // The shared loop prefix may contain only DOALL loops: any
        // shared serial loop interleaves the two subtrees, so "listed
        // earlier" would no longer mean "completed earlier".
        auto prefix_parallel_only = [](const std::vector<OLoop> &a,
                                       const std::vector<OLoop> &b) {
            for (std::size_t i = 0;
                 i < a.size() && i < b.size() && a[i] == b[i]; ++i)
                if (!a[i].parallel)
                    return false;
            return true;
        };

        std::vector<std::vector<std::pair<const ONode *, std::size_t>>>
            occs_of(prog.refCount());
        for (const ONode &n : nodes)
            for (std::size_t i = 0; i < n.refs.size(); ++i)
                if (!n.refs[i].stmt->isWrite)
                    occs_of[n.refs[i].ref].push_back({&n, i});

        for (hir::RefId id = 0; id < prog.refCount(); ++id) {
            if (occs_of[id].empty() ||
                mark_of(id).kind != MarkKind::TimeRead)
                continue;
            const std::uint32_t d2 = mark_of(id).distance;
            hir::RefId dominator = hir::invalidRef;
            bool all = true;
            for (const auto &[n, idx] : occs_of[id]) {
                const OOcc &occ = n->refs[idx];
                if (occ.inCritical || occ.fp.whole || occ.fp.approx ||
                    n->hasSync)
                {
                    all = false;
                    break;
                }
                hir::RefId found = hir::invalidRef;
                for (const Cand &c : cands) {
                    if (c.node != n || c.idx >= idx || c.occ->ref == id)
                        continue;
                    if (c.occ->stmt->array != occ.stmt->array ||
                        mark_of(c.occ->ref).distance > d2)
                        continue;
                    const bool lockstep =
                        c.occ->loops == occ.loops &&
                        c.occ->stmt->subs == occ.stmt->subs;
                    const bool completed =
                        prefix_parallel_only(c.occ->loops, occ.loops) &&
                        dominates_words(c.occ->fp, occ.fp);
                    if (lockstep || completed) {
                        found = c.occ->ref;
                        break;
                    }
                }
                if (found == hir::invalidRef &&
                    !avail.in[n->id].universal)
                {
                    for (std::size_t f = 0; f < cands.size(); ++f) {
                        if (!avail.in[n->id].bits[f])
                            continue;
                        const Cand &c = cands[f];
                        if (c.occ->ref == id ||
                            c.occ->stmt->array != occ.stmt->array ||
                            mark_of(c.occ->ref).distance > d2)
                            continue;
                        if (dominates_words(c.occ->fp, occ.fp)) {
                            found = c.occ->ref;
                            break;
                        }
                    }
                }
                if (found == hir::invalidRef) {
                    all = false;
                    break;
                }
                if (dominator == hir::invalidRef)
                    dominator = found;
            }
            if (all && dominator != hir::invalidRef)
                report.redundantMarks.push_back(
                    RedundantMark{id, dominator});
        }
    }

    // Compare against the real marking.
    for (hir::RefId id = 0; id < prog.refCount(); ++id) {
        if (prog.refInfo(id).stmt->isWrite)
            continue;
        const OracleRequirement &req = report.required[id];
        if (!req.exact)
            ++report.inexactReads;
        const compiler::Mark &m = cp.marking.mark(id);
        const std::uint64_t comp_sev = severityOf(m.kind, m.distance);
        const std::uint64_t req_sev =
            severityOf(kindOf(req.kind), req.distance);
        if (comp_sev < req_sev)
            report.underMarked.push_back(id);
        else if (comp_sev > req_sev && req.exact)
            report.overMarked.push_back(id);
    }
    return report;
}

namespace {

class OraclePass : public LintPass
{
  public:
    const char *name() const override { return "stale-marking-oracle"; }

    std::vector<std::string>
    ids() const override
    {
        return {"ORACLE001", "ORACLE002"};
    }

    void
    run(const compiler::CompiledProgram &cp, const LintOptions &opts,
        AnalysisCache &cache, DiagnosticEngine &diags) override
    {
        if (!opts.runOracle)
            return;
        const OracleReport &rep = cache.oracle(cp, opts);
        const hir::Program &prog = cp.program;

        for (hir::RefId id : rep.underMarked) {
            const OracleRequirement &req = rep.required[id];
            std::string threat = "unknown write";
            if (req.threat != hir::invalidRef)
                threat = csprintf(
                    "write ref %d %s, %d boundary(ies) away", req.threat,
                    SourceLoc::ofRef(prog, req.threat).where,
                    req.threatDistance);
            diags.report(
                "ORACLE001", Severity::Error,
                SourceLoc::ofRef(prog, id),
                csprintf("under-marked read: compiler mark '%s' but the "
                         "oracle requires '%s' (nearest conflicting %s)",
                         cp.marking.mark(id).str(), req.str(), threat));
        }

        if (!rep.overMarked.empty()) {
            const hir::RefId first = rep.overMarked.front();
            diags.report(
                "ORACLE002", Severity::Note, SourceLoc{},
                csprintf("%d read(s) marked more conservatively than the "
                         "word-exact oracle requires (precision loss, "
                         "not unsoundness); e.g. ref %d %s: compiler "
                         "'%s' vs required '%s'",
                         rep.overMarked.size(), first,
                         SourceLoc::ofRef(prog, first).where,
                         cp.marking.mark(first).str(),
                         rep.required[first].str()));
        }
    }
};

} // namespace

std::unique_ptr<LintPass>
makeOraclePass()
{
    return std::make_unique<OraclePass>();
}

} // namespace verify
} // namespace hscd
