/**
 * @file
 * Diagnostic-ID catalog: the single source of truth for every stable
 * diagnostic the verifier can emit.
 *
 * Each entry fixes an ID's severity, owning pass, short name, and
 * one-line meaning. Everything else derives from the table:
 *
 *  - DiagnosticEngine::report() rejects IDs that are not cataloged and
 *    severities that disagree with the canonical one, so a pass cannot
 *    invent an ID or silently change a contract;
 *  - PassManager::add() asserts, at registration, that the IDs a pass
 *    declares are cataloged and that no two registered passes claim the
 *    same ID;
 *  - the SARIF renderer emits the catalog as the run's rule table;
 *  - `hscd_lint --catalog` renders docs/DIAGNOSTICS.md (a test pins the
 *    checked-in file to the generated text).
 */

#ifndef HSCD_VERIFY_CATALOG_HH
#define HSCD_VERIFY_CATALOG_HH

#include <cstddef>
#include <string>

#include "verify/diagnostic.hh"

namespace hscd {
namespace verify {

struct CatalogEntry
{
    const char *id;        ///< stable ID, e.g. "MARK001"
    Severity severity;     ///< the ID's canonical severity
    const char *pass;      ///< owning pass (LintPass::name())
    const char *name;      ///< short kebab-case name for SARIF rules
    const char *summary;   ///< one-line meaning
};

/** The full ID table, in catalog order (uniqueness-checked once). */
const CatalogEntry *diagnosticCatalog(std::size_t &count);

/** Catalog entry for @p id, or nullptr when the ID is not cataloged. */
const CatalogEntry *catalogLookup(const std::string &id);

/** Zero-based index of @p id in the catalog (asserts it exists). */
std::size_t catalogIndex(const std::string &id);

/** Render the catalog as markdown (the docs/DIAGNOSTICS.md content). */
std::string catalogMarkdown();

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_CATALOG_HH
