/**
 * @file
 * Diagnostic engine for the coherence soundness verifier.
 *
 * Every lint pass reports findings through a DiagnosticEngine: a stable
 * diagnostic id (e.g. "HIR001"), a severity, a source location derived
 * from the HIR (procedure, reference id, rendered reference text), and a
 * human-readable message. The engine renders either plain text or JSON,
 * and computes the process exit status under an optional
 * warnings-are-errors policy.
 *
 * Severity contract:
 *  - Error:   a soundness or well-formedness violation; always fails.
 *  - Warning: suspicious but not provably wrong; fails under --werror.
 *  - Note:    informational (e.g. proven over-marking precision loss);
 *             never affects the exit status.
 */

#ifndef HSCD_VERIFY_DIAGNOSTIC_HH
#define HSCD_VERIFY_DIAGNOSTIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace verify {

/**
 * Process exit-code contract shared by every hscd binary (lint,
 * experiment sweeps, faultcheck). Each failure class gets its own code
 * so campaign drivers and CI can tell a usage typo from a detected
 * soundness violation from a structured run abort:
 *
 *   0  clean
 *   1  static diagnostics failed (lint errors, or warnings + --werror)
 *   2  command-line usage error
 *   3  runtime soundness violation (value-stamp oracle, shadow-epoch
 *      detector, or DOALL race) - the run produced wrong data and said so
 *   4  structured run abort (protocol retry exhaustion, watchdog,
 *      deadlock) - the run stopped itself before producing a result
 *   5  internal/harness error (uncaught exception, cell timeout)
 *
 * Codes 3 and 4 are the "detected failure" range: a nonzero count there
 * is a flagged result, never a silently wrong one.
 */
enum ExitCode : int
{
    ExitSuccess = 0,
    ExitDiagnostics = 1,
    ExitUsage = 2,
    ExitViolation = 3,
    ExitAbort = 4,
    ExitInternal = 5,
};

enum class Severity : std::uint8_t
{
    Note,
    Warning,
    Error,
};

const char *severityName(Severity s);

/**
 * Where a diagnostic points. The HIR has no file/line information, so a
 * location is the procedure name plus, when the finding is anchored to a
 * static memory reference, its RefId and a rendered "ARRAY(subs)" form.
 */
struct SourceLoc
{
    std::string proc;               ///< procedure name; "" = program scope
    hir::RefId ref = hir::invalidRef;
    std::string where;              ///< rendered site, e.g. "A(i+1)"

    /** Build the reference location for @p id from the program tables. */
    static SourceLoc ofRef(const hir::Program &prog, hir::RefId id);

    std::string str() const;
};

struct Diagnostic
{
    std::string id;      ///< stable catalog id, e.g. "ORACLE001"
    Severity severity = Severity::Warning;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics from all passes over one program. Diagnostics are
 * kept in insertion order; passes themselves iterate the program
 * deterministically, so rendered output is byte-identical run to run.
 */
class DiagnosticEngine
{
  public:
    explicit DiagnosticEngine(std::string program_name = "")
        : _program(std::move(program_name))
    {}

    void report(const std::string &id, Severity sev, SourceLoc loc,
                const std::string &message);

    const std::vector<Diagnostic> &diagnostics() const { return _diags; }
    const std::string &programName() const { return _program; }

    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::Error); }
    std::size_t warnings() const { return count(Severity::Warning); }
    std::size_t notes() const { return count(Severity::Note); }

    /** True when the run must fail: errors, or warnings under werror. */
    bool failed(bool werror) const
    {
        return errors() > 0 || (werror && warnings() > 0);
    }

    /** Process exit status per the ExitCode contract above. */
    int
    exitCode(bool werror) const
    {
        return failed(werror) ? ExitDiagnostics : ExitSuccess;
    }

    /** Human-readable listing, one diagnostic per line plus a summary. */
    std::string renderText() const;

    /**
     * One JSON object:
     * {"program":..., "counts":{"errors":n,"warnings":n,"notes":n},
     *  "diagnostics":[{"id":...,"severity":...,"proc":...,"ref":n,
     *                  "where":...,"message":...}, ...]}
     */
    std::string renderJson(int indent = 0) const;

  private:
    std::string _program;
    std::vector<Diagnostic> _diags;
};

/** Escape a string for embedding in a JSON literal (no quotes added). */
std::string jsonEscape(const std::string &s);

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_DIAGNOSTIC_HH
