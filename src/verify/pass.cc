#include "verify/pass.hh"

namespace hscd {
namespace verify {

PassManager
PassManager::standard()
{
    PassManager pm;
    pm.add(makeHirLintPass());
    pm.add(makeGraphLintPass());
    pm.add(makeOraclePass());
    return pm;
}

DiagnosticEngine
lintProgram(const compiler::CompiledProgram &cp,
            const std::string &program_name, const LintOptions &opts)
{
    DiagnosticEngine diags(program_name);
    PassManager::standard().runAll(cp, opts, diags);
    return diags;
}

} // namespace verify
} // namespace hscd
