#include "verify/pass.hh"

#include <algorithm>

#include "common/log.hh"
#include "verify/catalog.hh"
#include "verify/oracle.hh"

namespace hscd {
namespace verify {

AnalysisCache::AnalysisCache() = default;
AnalysisCache::~AnalysisCache() = default;

const OracleReport &
AnalysisCache::oracle(const compiler::CompiledProgram &cp,
                      const LintOptions &opts)
{
    if (!_oracle)
        _oracle = std::make_unique<OracleReport>(oracleAnalyze(cp, opts));
    return *_oracle;
}

void
PassManager::add(std::unique_ptr<LintPass> pass)
{
    for (const std::string &id : pass->ids()) {
        const CatalogEntry *entry = catalogLookup(id);
        hscd_assert(entry, "pass '%s' declares uncataloged diagnostic "
                           "id '%s'", pass->name(), id.c_str());
        hscd_assert(std::string(entry->pass) == pass->name(),
                    "diagnostic id '%s' is cataloged for pass '%s' but "
                    "declared by pass '%s'",
                    id.c_str(), entry->pass, pass->name());
        hscd_assert(std::find(_claimed.begin(), _claimed.end(), id) ==
                        _claimed.end(),
                    "diagnostic id '%s' claimed by two registered passes",
                    id.c_str());
        _claimed.push_back(id);
    }
    _passes.push_back(std::move(pass));
}

PassManager
PassManager::standard()
{
    PassManager pm;
    pm.add(makeHirLintPass());
    pm.add(makeGraphLintPass());
    pm.add(makeOraclePass());
    pm.add(makeMarkLintPass());
    return pm;
}

DiagnosticEngine
lintProgram(const compiler::CompiledProgram &cp,
            const std::string &program_name, const LintOptions &opts)
{
    DiagnosticEngine diags(program_name);
    AnalysisCache cache;
    PassManager::standard().runAll(cp, opts, cache, diags);
    return diags;
}

} // namespace verify
} // namespace hscd
