/**
 * @file
 * Epoch-graph structural lints (diagnostic ids GRAPH001..GRAPH003).
 *
 *  GRAPH001 (warning) unreachable-epoch: an epoch node with no path
 *                     from the program entry; its references are dead
 *                     and its marks meaningless.
 *  GRAPH002 (error)   distance-exceeds-timetag: a Time-Read distance
 *                     operand larger than the configured timetag width
 *                     can represent. The hardware window after a
 *                     two-phase reset is 2^bits - 1 epochs; a larger
 *                     operand silently degrades to hardware clamping,
 *                     which the compiler must not rely on.
 *  GRAPH003 (error)   bypass-on-unprotected: a read marked Bypass with
 *                     a critical-section reason although neither the
 *                     read nor any same-array write in its epochs is
 *                     lock-protected (resp. no post/wait in its epochs
 *                     for sync-ordered bypasses). Bypass marks are the
 *                     most expensive class; an unjustified one points
 *                     at a marking bug.
 *  GRAPH004 (warning) write-write-conflict: two distinct DOALL tasks of
 *                     one parallel epoch provably write the same word
 *                     with no lock or post/wait ordering them. Proven
 *                     from the oracle's word-exact enumerated
 *                     footprints, so it cannot fire on merely
 *                     unprovable separation.
 */

#include <vector>

#include "common/strutil.hh"
#include "verify/oracle.hh"
#include "verify/pass.hh"

namespace hscd {
namespace verify {

namespace {

using compiler::EpochGraph;
using compiler::EpochNode;
using compiler::MarkKind;
using compiler::MarkReason;
using compiler::RefOccur;
using compiler::unreachableDist;

class GraphLintPass : public LintPass
{
  public:
    const char *name() const override { return "graph-lints"; }

    std::vector<std::string>
    ids() const override
    {
        return {"GRAPH001", "GRAPH002", "GRAPH003", "GRAPH004"};
    }

    void
    run(const compiler::CompiledProgram &cp, const LintOptions &opts,
        AnalysisCache &cache, DiagnosticEngine &diags) override
    {
        const EpochGraph &g = cp.graph;
        const hir::Program &prog = cp.program;

        // GRAPH001: reachability from the entry node.
        for (const EpochNode &n : g.nodes()) {
            if (g.distance(g.entry(), n.id) == unreachableDist) {
                diags.report(
                    "GRAPH001", Severity::Warning,
                    SourceLoc{"", hir::invalidRef, n.label()},
                    csprintf("epoch node %s is unreachable from the "
                             "program entry (%d references are dead)",
                             n.label(), n.refs.size()));
            }
        }

        // GRAPH002: every TimeRead distance must be encodable. After a
        // two-phase reset the oldest surviving timetag is EC - (2^b - 1),
        // so 2^b - 1 is the widest meaningful distance operand.
        const std::uint32_t max_encodable =
            opts.timetagBits >= 32
                ? ~std::uint32_t{0}
                : (std::uint32_t{1} << opts.timetagBits) - 1;
        for (hir::RefId id = 0; id < prog.refCount(); ++id) {
            const compiler::Mark &m = cp.marking.mark(id);
            if (m.kind == MarkKind::TimeRead &&
                m.distance > max_encodable)
            {
                diags.report(
                    "GRAPH002", Severity::Error,
                    SourceLoc::ofRef(prog, id),
                    csprintf("time-read distance %d exceeds the %d-bit "
                             "timetag window (max encodable distance "
                             "%d); the compiler must saturate, not rely "
                             "on hardware clamping",
                             m.distance, opts.timetagBits,
                             max_encodable));
            }
        }

        // GRAPH003: justification scan for Bypass marks. Collect, per
        // reference, whether any occurrence could justify the bypass.
        std::vector<bool> in_critical(prog.refCount(), false);
        std::vector<bool> critical_writer_near(prog.refCount(), false);
        std::vector<bool> sync_near(prog.refCount(), false);
        for (const EpochNode &n : g.nodes()) {
            bool node_has_critical_write = false;
            for (const RefOccur &occ : n.refs)
                if (occ.stmt->isWrite && occ.inCritical)
                    node_has_critical_write = true;
            for (const RefOccur &occ : n.refs) {
                if (occ.stmt->isWrite)
                    continue;
                if (occ.inCritical)
                    in_critical[occ.ref] = true;
                if (node_has_critical_write)
                    critical_writer_near[occ.ref] = true;
                if (n.hasSync)
                    sync_near[occ.ref] = true;
            }
        }
        for (hir::RefId id = 0; id < prog.refCount(); ++id) {
            const compiler::Mark &m = cp.marking.mark(id);
            if (m.kind != MarkKind::Bypass)
                continue;
            if (m.reason == MarkReason::Critical && !in_critical[id] &&
                !critical_writer_near[id])
            {
                diags.report(
                    "GRAPH003", Severity::Error,
                    SourceLoc::ofRef(prog, id),
                    "bypass(critical) mark on a read that is neither "
                    "inside a critical section nor in an epoch with "
                    "lock-protected writers");
            } else if (m.reason == MarkReason::SyncOrdered &&
                       !sync_near[id])
            {
                diags.report(
                    "GRAPH003", Severity::Error,
                    SourceLoc::ofRef(prog, id),
                    "bypass(sync) mark on a read none of whose epochs "
                    "contains post/wait synchronization");
            }
        }

        // GRAPH004: proven unsynchronized same-word writes, computed by
        // the oracle from enumerated footprints (shared via the cache).
        if (opts.runOracle) {
            const OracleReport &rep = cache.oracle(cp, opts);
            for (const WriteConflict &wc : rep.writeConflicts) {
                const std::string where =
                    wc.a == wc.b
                        ? std::string("this write")
                        : csprintf("this write and %s",
                                   SourceLoc::ofRef(prog, wc.b).str());
                diags.report(
                    "GRAPH004", Severity::Warning,
                    SourceLoc::ofRef(prog, wc.a),
                    csprintf("DOALL tasks %d and %d both write word %d "
                             "of %s (%s) with no lock or post/wait "
                             "ordering them; the final value depends on "
                             "task scheduling",
                             wc.taskA, wc.taskB, wc.word,
                             prog.array(wc.array).name, where));
            }
        }
    }
};

} // namespace

std::unique_ptr<LintPass>
makeGraphLintPass()
{
    return std::make_unique<GraphLintPass>();
}

} // namespace verify
} // namespace hscd
