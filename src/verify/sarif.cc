#include "verify/sarif.hh"

#include "common/strutil.hh"
#include "verify/catalog.hh"

namespace hscd {
namespace verify {

namespace {

const char *
sarifLevel(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "none";
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace

std::string
renderSarif(const std::vector<DiagnosticEngine> &programs,
            const obs::Provenance &prov)
{
    std::string out;
    out += "{\n";
    out += "  \"$schema\": \"https://json.schemastore.org/"
           "sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n";
    out += "    {\n";

    // Tool + the full catalog as the rule table. Emitting every
    // cataloged ID (fired or not) keeps ruleIndex values stable.
    out += "      \"tool\": {\n";
    out += "        \"driver\": {\n";
    out += "          \"name\": \"hscd_lint\",\n";
    out += "          \"informationUri\": "
           "\"https://example.invalid/hscd\",\n";
    out += "          \"rules\": [\n";
    std::size_t nrules = 0;
    const CatalogEntry *cat = diagnosticCatalog(nrules);
    for (std::size_t i = 0; i < nrules; ++i) {
        const CatalogEntry &e = cat[i];
        out += "            {\n";
        out += csprintf("              \"id\": %s,\n",
                        quoted(e.id));
        out += csprintf("              \"name\": %s,\n",
                        quoted(e.name));
        out += csprintf("              \"shortDescription\": "
                        "{\"text\": %s},\n",
                        quoted(e.summary));
        out += csprintf("              \"defaultConfiguration\": "
                        "{\"level\": \"%s\"}\n",
                        sarifLevel(e.severity));
        out += i + 1 < nrules ? "            },\n" : "            }\n";
    }
    out += "          ]\n";
    out += "        }\n";
    out += "      },\n";

    // Results, in input order across targets. Locations are logical:
    // the HIR carries no files, so a site is program::proc::where.
    out += "      \"results\": [\n";
    std::size_t total = 0;
    for (const DiagnosticEngine &d : programs)
        total += d.diagnostics().size();
    std::size_t emitted = 0;
    for (const DiagnosticEngine &d : programs) {
        for (const Diagnostic &diag : d.diagnostics()) {
            std::string fqn = d.programName();
            if (!diag.loc.proc.empty())
                fqn += "::" + diag.loc.proc;
            if (!diag.loc.where.empty())
                fqn += "::" + diag.loc.where;
            out += "        {\n";
            out += csprintf("          \"ruleId\": %s,\n",
                            quoted(diag.id));
            out += csprintf("          \"ruleIndex\": %d,\n",
                            catalogIndex(diag.id));
            out += csprintf("          \"level\": \"%s\",\n",
                            sarifLevel(diag.severity));
            out += csprintf("          \"message\": {\"text\": %s},\n",
                            quoted(diag.message));
            out += "          \"locations\": [\n";
            out += "            {\n";
            out += "              \"logicalLocations\": [\n";
            out += "                {\n";
            out += csprintf("                  \"name\": %s,\n",
                            quoted(diag.loc.where.empty()
                                       ? diag.loc.proc
                                       : diag.loc.where));
            out += csprintf("                  \"fullyQualifiedName\": "
                            "%s,\n",
                            quoted(fqn));
            out += "                  \"kind\": \"member\"\n";
            out += "                }\n";
            out += "              ]\n";
            out += "            }\n";
            out += "          ],\n";
            out += "          \"properties\": {\n";
            out += csprintf("            \"program\": %s,\n",
                            quoted(d.programName()));
            if (diag.loc.ref != hir::invalidRef)
                out += csprintf("            \"refId\": %d,\n",
                                diag.loc.ref);
            out += csprintf("            \"severity\": \"%s\"\n",
                            severityName(diag.severity));
            out += "          }\n";
            ++emitted;
            out += emitted < total ? "        },\n" : "        }\n";
        }
    }
    out += "      ],\n";
    out += "      \"columnKind\": \"utf16CodeUnits\",\n";

    // Provenance, minus the jobs field: SARIF output is part of the
    // byte-identical-at-any---jobs contract.
    out += "      \"properties\": {\n";
    out += csprintf("        \"schema\": %s,\n",
                    quoted(csprintf("%s/%d", prov.schema,
                                    prov.version)));
    out += csprintf("        \"tool\": %s,\n", quoted(prov.tool));
    out += csprintf("        \"configHash\": \"%016x\",\n",
                    prov.configHash);
    out += csprintf("        \"fault\": %s\n", quoted(prov.faultSpec));
    out += "      }\n";
    out += "    }\n";
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace verify
} // namespace hscd
