/**
 * @file
 * Stale-marking soundness oracle.
 *
 * An independent, deliberately simple reaching-writes dataflow over
 * epochs that recomputes, for every static read reference, the weakest
 * mark that is still sound — and compares it against what the real
 * marking pass (src/compiler/marking.cc) produced.
 *
 * Independence: the oracle re-derives the epoch partitioning, the
 * boundary distances, the intra-task write coverage, and — instead of
 * bounded regular sections — computes reference footprints by literally
 * enumerating the iteration space into per-word sets (word-granular
 * where every bound and subscript is concretely evaluable, whole-array
 * otherwise). Same-epoch cross-task conflicts are decided per word from
 * recorded task labels rather than by an affine separation test.
 *
 * Conservatism contract: the oracle's required-mark set is a superset
 * of what a sound compiler may emit weakly — oracle-required ⊇
 * truly-required always holds; the reverse never does. Hence:
 *
 *  - compiler mark weaker than the oracle requirement  => under-marking,
 *    a soundness bug (ORACLE001, error);
 *  - compiler mark stronger than the oracle requirement, on a read whose
 *    analysis stayed word-exact                         => over-marking,
 *    a precision loss (ORACLE002, note with counts).
 */

#ifndef HSCD_VERIFY_ORACLE_HH
#define HSCD_VERIFY_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/analysis.hh"
#include "verify/pass.hh"

namespace hscd {
namespace verify {

/** What the oracle concludes a read requires of the hardware. */
enum class ReqKind : std::uint8_t
{
    None,      ///< a plain Normal read is sound
    TimeRead,  ///< needs a Time-Read with distance <= `distance`
    Bypass,    ///< must always refetch
};

struct OracleRequirement
{
    ReqKind kind = ReqKind::None;
    /** Max sound Time-Read distance (already clamped like the compiler). */
    std::uint32_t distance = 0;
    /** No whole-array footprint widening was involved for this read. */
    bool exact = true;
    /** The nearest conflicting write that set the requirement. */
    hir::RefId threat = hir::invalidRef;
    /** Boundary distance of that threat. */
    std::uint32_t threatDistance = 0;

    std::string str() const;
};

/**
 * A proven same-epoch cross-task write-write conflict: two distinct
 * DOALL tasks of one parallel epoch node write the same word with no
 * lock or post/wait between them, so the word's final value depends on
 * task scheduling. Proven-only: both footprints were enumerated
 * word-exactly with concrete task labels, so this never fires on
 * merely-unprovable separation (a `--werror` gate must not flake).
 */
struct WriteConflict
{
    hir::RefId a = hir::invalidRef;  ///< first write (catalog order)
    hir::RefId b = hir::invalidRef;  ///< second write (may equal a)
    hir::ArrayId array = hir::invalidArray;
    std::uint64_t word = 0;          ///< smallest conflicting word
    /** Two distinct tasks proven to write `word` (taskA < taskB). */
    std::int64_t taskA = 0;
    std::int64_t taskB = 0;
};

/**
 * A Time-Read whose every occurrence is dominated, within the same
 * epoch instance, by an earlier non-conditional Time-Read covering the
 * same words from the same task at an equal-or-stricter distance. On
 * TPI the dominated read can never refetch (the dominator left the
 * word's timetag at >= EC - d1 >= EC - d2, modulo mid-epoch tag
 * resets), yet on SC its marking costs a refetch every execution.
 */
struct RedundantMark
{
    hir::RefId ref = hir::invalidRef;        ///< the dominated read
    hir::RefId dominator = hir::invalidRef;  ///< one proving dominator
};

struct OracleReport
{
    /** Per-RefId requirement (writes get a default None entry). */
    std::vector<OracleRequirement> required;
    /** Reads the compiler classified more weakly than required. */
    std::vector<hir::RefId> underMarked;
    /** Word-exact reads the compiler classified more strongly. */
    std::vector<hir::RefId> overMarked;
    /** Reads whose analysis needed a whole-array fallback somewhere. */
    std::uint64_t inexactReads = 0;
    /** Proven unsynchronized same-word writes (GRAPH004 input). */
    std::vector<WriteConflict> writeConflicts;
    /** Time-Reads dominated by an earlier one (MARK002 input). */
    std::vector<RedundantMark> redundantMarks;
};

/** Run the oracle dataflow and compare against cp.marking. */
OracleReport oracleAnalyze(const compiler::CompiledProgram &cp,
                           const LintOptions &opts = {});

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_ORACLE_HH
