/**
 * @file
 * Generic monotone worklist dataflow over the epoch flow graph.
 *
 * The epoch graph is the verifier's canonical CFG: nodes are
 * boundary-free code segments, edges carry a 0/1 epoch-boundary weight.
 * A dataflow instance supplies a bounded-height lattice and monotone
 * transfer functions; the solver iterates a worklist to the (unique)
 * greatest fixpoint. Forward and backward problems share one engine:
 * backward problems run forward over the reversed edge set.
 *
 * Domain concept (the "lattice template"):
 *
 *   struct Domain {
 *     using Value = ...;                 // a lattice element
 *     Value top() const;                // identity of meet ("no info")
 *     Value boundary() const;           // value at the entry (forward)
 *                                       // or at every exit (backward)
 *     // Meet @p v into @p into; return true iff @p into changed.
 *     bool meetInto(Value &into, const Value &v) const;
 *     // Node transfer function (monotone in @p in).
 *     Value transfer(compiler::NodeId n, const Value &in) const;
 *     // Edge transfer: how a value decays crossing an edge of weight
 *     // @p w (0 = same epoch, >=1 = across that many boundaries).
 *     Value edge(const Value &out, std::uint32_t w) const;
 *   };
 *
 * Interprocedural reach: the epoch graph is built with calls virtually
 * inlined, so one solve is already whole-program; the bottom-up
 * ProcSummary side tables (compiler/summary.hh) supply the cheap
 * may-MOD pre-filters a pass uses to skip arrays no procedure writes.
 *
 * Termination: transfer/edge monotone plus a finite-height Value
 * lattice (every concrete domain here is either a saturating min over
 * [0, unreachableDist] or a finite bit set) bounds the number of times
 * any node can re-enter the worklist.
 */

#ifndef HSCD_VERIFY_DATAFLOW_HH
#define HSCD_VERIFY_DATAFLOW_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "compiler/epoch_graph.hh"

namespace hscd {
namespace verify {

enum class FlowDir : std::uint8_t
{
    Forward,
    Backward,
};

/**
 * Adjacency snapshot of an epoch graph, with the reversed edge set
 * precomputed so one snapshot serves both directions.
 */
struct FlowGraph
{
    std::vector<std::vector<compiler::EpochEdge>> succs;
    std::vector<std::vector<compiler::EpochEdge>> preds;

    explicit FlowGraph(const compiler::EpochGraph &g)
    {
        succs.resize(g.nodes().size());
        for (const compiler::EpochNode &n : g.nodes())
            succs[n.id] = n.succs;
        buildPreds();
    }

    /** From a raw adjacency (e.g. the oracle's re-derived graph). */
    explicit FlowGraph(std::vector<std::vector<compiler::EpochEdge>> adj)
        : succs(std::move(adj))
    {
        buildPreds();
    }

    std::size_t size() const { return succs.size(); }

  private:
    void
    buildPreds()
    {
        preds.assign(succs.size(), {});
        for (std::size_t n = 0; n < succs.size(); ++n)
            for (const compiler::EpochEdge &e : succs[n])
                preds[e.to].push_back(compiler::EpochEdge{
                    static_cast<compiler::NodeId>(n), e.weight});
    }
};

/** Per-node fixpoint: value at node entry and at node exit. */
template <typename Domain>
struct FlowResult
{
    std::vector<typename Domain::Value> in;
    std::vector<typename Domain::Value> out;
};

/**
 * Solve @p dom over @p g to its greatest fixpoint. For Backward
 * problems `in` is the value at node *exit* and `out` at node *entry*
 * (the engine runs forward over reversed edges; callers index
 * semantically, which keeps the engine free of direction special
 * cases).
 */
template <typename Domain>
FlowResult<Domain>
solveDataflow(const FlowGraph &g, FlowDir dir, const Domain &dom)
{
    const std::size_t n = g.size();
    const auto &fwd = dir == FlowDir::Forward ? g.succs : g.preds;
    const auto &bwd = dir == FlowDir::Forward ? g.preds : g.succs;

    FlowResult<Domain> res;
    res.in.assign(n, dom.top());
    res.out.assign(n, dom.top());

    std::deque<compiler::NodeId> work;
    std::vector<bool> queued(n, false);
    auto enqueue = [&](compiler::NodeId id) {
        if (!queued[id]) {
            queued[id] = true;
            work.push_back(id);
        }
    };

    // Roots: the program entry (forward) or every exit node (backward).
    for (std::size_t i = 0; i < n; ++i) {
        const bool root = bwd[i].empty();
        if (root)
            dom.meetInto(res.in[i], dom.boundary());
        enqueue(static_cast<compiler::NodeId>(i));
    }

    while (!work.empty()) {
        const compiler::NodeId id = work.front();
        work.pop_front();
        queued[id] = false;

        typename Domain::Value out = dom.transfer(id, res.in[id]);
        const bool out_changed = dom.meetInto(res.out[id], out);
        if (!out_changed)
            continue;
        for (const compiler::EpochEdge &e : fwd[id]) {
            typename Domain::Value v = dom.edge(res.out[id], e.weight);
            if (dom.meetInto(res.in[e.to], v))
                enqueue(e.to);
        }
    }
    return res;
}

/**
 * Stock domain: saturating min-distance ("how many epoch boundaries
 * since the nearest program point where `gens` holds"). Value semantics:
 * unreachableDist = no generating point reaches here; d = some
 * generating point lies exactly d boundaries back on the closest path.
 * Used by the marking-precision passes with "node contains a
 * may-conflicting write" as the generator; also the engine's reference
 * instance for tests.
 */
class MinDistanceDomain
{
  public:
    using Value = std::uint32_t;

    /** @p gens[n] = node n generates distance 0. */
    explicit MinDistanceDomain(std::vector<bool> gens)
        : _gens(std::move(gens))
    {}

    Value top() const { return compiler::unreachableDist; }
    Value boundary() const { return compiler::unreachableDist; }

    bool
    meetInto(Value &into, const Value &v) const
    {
        if (v < into) {
            into = v;
            return true;
        }
        return false;
    }

    Value
    transfer(compiler::NodeId n, const Value &in) const
    {
        return _gens[n] ? 0 : in;
    }

    Value
    edge(const Value &out, std::uint32_t w) const
    {
        if (out == compiler::unreachableDist)
            return out;
        // Saturating add keeps the lattice finite-height.
        const Value sum = out + w;
        return sum < out ? compiler::unreachableDist : sum;
    }

  private:
    std::vector<bool> _gens;
};

/**
 * Stock domain: intra-epoch must-availability of a finite fact set
 * (bit-vector, meet = intersection). Facts are generated per node and
 * die crossing any epoch boundary (weight >= 1 edge), so a fact is
 * available at a node only when *every* same-epoch path from the
 * epoch's start establishes it. Used by MARK002 with "a non-conditional
 * Time-Read executed" as the fact universe.
 */
class EpochFactsDomain
{
  public:
    /** Value: present-bit per fact; `universal` is the meet identity. */
    struct Value
    {
        bool universal = true;
        std::vector<bool> bits;
    };

    /**
     * @p gens[n] = indices of the facts node n establishes;
     * @p kills[n] = node n invalidates every incoming fact before its
     * own gens (e.g. post/wait nodes, whose cross-task ordering breaks
     * the intra-epoch guarantees the facts encode). Empty = no kills.
     */
    EpochFactsDomain(std::size_t facts,
                     std::vector<std::vector<std::uint32_t>> gens,
                     std::vector<bool> kills = {})
        : _facts(facts), _gens(std::move(gens)), _kills(std::move(kills))
    {}

    Value top() const { return Value{true, {}}; }
    Value boundary() const { return Value{false, noBits()}; }

    bool
    meetInto(Value &into, const Value &v) const
    {
        if (v.universal)
            return false;
        if (into.universal) {
            into = v;
            return true;
        }
        bool changed = false;
        for (std::size_t i = 0; i < _facts; ++i) {
            if (into.bits[i] && !v.bits[i]) {
                into.bits[i] = false;
                changed = true;
            }
        }
        return changed;
    }

    Value
    transfer(compiler::NodeId n, const Value &in) const
    {
        Value out = !_kills.empty() && _kills[n]
                        ? Value{false, noBits()}
                        : in;
        if (out.universal)
            return out;
        for (std::uint32_t f : _gens[n])
            out.bits[f] = true;
        return out;
    }

    Value
    edge(const Value &out, std::uint32_t w) const
    {
        // Epoch boundaries invalidate every intra-epoch fact.
        return w > 0 ? Value{false, noBits()} : out;
    }

  private:
    std::vector<bool> noBits() const
    {
        return std::vector<bool>(_facts, false);
    }

    std::size_t _facts;
    std::vector<std::vector<std::uint32_t>> _gens;
    std::vector<bool> _kills;
};

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_DATAFLOW_HH
