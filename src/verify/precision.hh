/**
 * @file
 * Marking-precision analyses (MARK001 / MARK003 inputs) and the
 * proven-safe tightening rewrite behind `hscd_lint --tighten`.
 *
 * MARK001 (over-conservative marks) compares the compiler's mark
 * against the soundness oracle's word-exact requirement under the
 * shared severity scalar (compiler/marking.hh markSeverity): a strictly
 * more severe mark on a read whose oracle analysis never widened to a
 * whole-array footprint is provably over-conservative, and the oracle
 * requirement itself — already clamped to the encodable window — is the
 * minimal sound replacement.
 *
 * MARK003 (distance saturation) solves a MinDistanceDomain problem per
 * array over the epoch flow graph: gens = "node contains a may-write of
 * the array", so the fixpoint at a read is a LOWER bound on the true
 * epochs-since-last-conflicting-write distance (the gen set is a
 * superset of the truly conflicting writes, and extra or nearer
 * generators only shrink a min). A lower bound above 2^timetagBits - 1
 * therefore proves the marked distance was clamped: the hardware window
 * cannot express the real distance, and every Time-Read whose cached
 * copy outlives the window refetches — the static predictor for the
 * paper's CONSERVATIVE miss class. The interprocedural ProcSummary
 * may-MOD tables pre-filter arrays no procedure writes before any
 * per-array solve.
 */

#ifndef HSCD_VERIFY_PRECISION_HH
#define HSCD_VERIFY_PRECISION_HH

#include <cstdint>
#include <vector>

#include "compiler/analysis.hh"
#include "verify/oracle.hh"
#include "verify/pass.hh"

namespace hscd {
namespace verify {

/** One proven-safe marking rewrite (MARK001). */
struct Tighten
{
    hir::RefId ref = hir::invalidRef;
    compiler::Mark from;              ///< the compiler's current mark
    compiler::MarkKind toKind = compiler::MarkKind::Normal;
    std::uint32_t toDistance = 0;     ///< valid when toKind == TimeRead
};

/** One proven saturation of the timetag window (MARK003). */
struct Saturation
{
    hir::RefId ref = hir::invalidRef;
    std::uint32_t markedDistance = 0; ///< distance the compiler emitted
    std::uint32_t provenLower = 0;    ///< dataflow lower bound on truth
    std::uint32_t window = 0;         ///< 2^timetagBits - 1
};

struct PrecisionReport
{
    /** Reads whose mark is provably stronger than required (MARK001). */
    std::vector<Tighten> overConservative;
    /** Time-Reads whose true distance provably exceeds the window. */
    std::vector<Saturation> saturated;
};

/**
 * Run both precision analyses. @p oracle must come from the same
 * @p cp / @p opts pair (passes share it via AnalysisCache).
 */
PrecisionReport precisionAnalyze(const compiler::CompiledProgram &cp,
                                 const LintOptions &opts,
                                 const OracleReport &oracle);

/**
 * Apply every MARK001 rewrite in @p rep to @p cp's marking and refresh
 * its statistics. Only weakens marks the oracle proved over-strict, so
 * the result stays sound by the oracle's conservatism contract; callers
 * re-lint and re-simulate with the runtime checkers anyway.
 */
void tightenMarking(compiler::CompiledProgram &cp,
                    const PrecisionReport &rep);

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_PRECISION_HH
