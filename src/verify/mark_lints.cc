/**
 * @file
 * Marking-precision lints (diagnostic ids MARK001..MARK003).
 *
 *  MARK001 (note) proven-over-conservative: the compiler's mark is
 *                 strictly more severe than the soundness oracle's
 *                 word-exact requirement — the static counterpart of
 *                 ORACLE002 that also names the minimal sound
 *                 replacement `hscd_lint --tighten` would install.
 *  MARK002 (note) redundant-marking: a Time-Read every occurrence of
 *                 which is dominated, within its epoch instance, by an
 *                 earlier same-task Time-Read covering the same words
 *                 at an equal-or-stricter distance; on TPI it can never
 *                 refetch, while SC pays for it on every execution.
 *  MARK003 (note) distance-saturation: the dataflow lower bound on the
 *                 true epochs-since-last-write distance exceeds the
 *                 2^timetagBits - 1 window, proving the emitted
 *                 distance was clamped — the static predictor for the
 *                 paper's CONSERVATIVE miss class.
 */

#include "common/strutil.hh"
#include "verify/oracle.hh"
#include "verify/pass.hh"
#include "verify/precision.hh"

namespace hscd {
namespace verify {

namespace {

class MarkLintPass : public LintPass
{
  public:
    const char *name() const override { return "marking-precision"; }

    std::vector<std::string>
    ids() const override
    {
        return {"MARK001", "MARK002", "MARK003"};
    }

    void
    run(const compiler::CompiledProgram &cp, const LintOptions &opts,
        AnalysisCache &cache, DiagnosticEngine &diags) override
    {
        if (!opts.runOracle)
            return;
        const hir::Program &prog = cp.program;
        const OracleReport &oracle = cache.oracle(cp, opts);
        const PrecisionReport rep = precisionAnalyze(cp, opts, oracle);

        for (const Tighten &t : rep.overConservative) {
            const compiler::Mark to{t.toKind, t.from.reason,
                                    t.toDistance};
            diags.report(
                "MARK001", Severity::Note,
                SourceLoc::ofRef(prog, t.ref),
                csprintf("mark %s is proven over-conservative; the "
                         "word-exact oracle requirement is %s "
                         "(--tighten rewrites it)",
                         t.from.str(), to.str()));
        }

        for (const RedundantMark &rm : oracle.redundantMarks) {
            diags.report(
                "MARK002", Severity::Note,
                SourceLoc::ofRef(prog, rm.ref),
                csprintf("time-read is redundant: every occurrence is "
                         "dominated by the earlier time-read at %s with "
                         "an equal-or-stricter distance, so on TPI it "
                         "can never refetch",
                         SourceLoc::ofRef(prog, rm.dominator).str()));
        }

        for (const Saturation &s : rep.saturated) {
            diags.report(
                "MARK003", Severity::Note,
                SourceLoc::ofRef(prog, s.ref),
                csprintf("time-read distance saturates the timetag "
                         "window: the true distance is provably >= %s "
                         "but %d-bit timetags encode at most %d, so the "
                         "mark was clamped to %d and stale-window "
                         "misses become CONSERVATIVE misses",
                         s.provenLower == compiler::unreachableDist
                             ? std::string("unbounded")
                             : csprintf("%d", s.provenLower),
                         opts.timetagBits, s.window, s.markedDistance));
        }
    }
};

} // namespace

std::unique_ptr<LintPass>
makeMarkLintPass()
{
    return std::make_unique<MarkLintPass>();
}

} // namespace verify
} // namespace hscd
