/**
 * @file
 * SARIF 2.1.0 renderer for lint diagnostics.
 *
 * One hscd_lint invocation renders as a single SARIF `run`: the
 * diagnostic catalog becomes the driver's rule table (every cataloged
 * ID, not just the fired ones, so ruleIndex is stable across runs), and
 * each diagnostic becomes a `result` with a logical location — the HIR
 * has no files, so locations are `logicalLocations` of the form
 * program::proc::site rather than physical artifact references.
 *
 * Determinism contract: the rendered document is byte-identical at any
 * `--jobs` value. Results are emitted in input order per target, and
 * the embedded provenance properties deliberately omit the one field
 * (`jobs`) the provenance header format allows to vary.
 */

#ifndef HSCD_VERIFY_SARIF_HH
#define HSCD_VERIFY_SARIF_HH

#include <string>
#include <vector>

#include "obs/provenance.hh"
#include "verify/diagnostic.hh"

namespace hscd {
namespace verify {

/**
 * Render @p programs (one engine per linted target, in input order) as
 * a complete SARIF 2.1.0 log. @p prov supplies the run's provenance
 * properties (schema, tool, configHash; `jobs` is omitted by design).
 */
std::string renderSarif(const std::vector<DiagnosticEngine> &programs,
                        const obs::Provenance &prov);

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_SARIF_HH
