#include "verify/diagnostic.hh"

#include "common/log.hh"
#include "common/strutil.hh"
#include "verify/catalog.hh"

namespace hscd {
namespace verify {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

SourceLoc
SourceLoc::ofRef(const hir::Program &prog, hir::RefId id)
{
    const hir::RefInfo &info = prog.refInfo(id);
    SourceLoc loc;
    loc.proc = prog.procedures().at(info.proc).name;
    loc.ref = id;
    std::string subs;
    for (std::size_t i = 0; i < info.stmt->subs.size(); ++i)
        subs += (i ? "," : "") + info.stmt->subs[i].str();
    loc.where = csprintf("%s(%s)", prog.array(info.stmt->array).name, subs);
    return loc;
}

std::string
SourceLoc::str() const
{
    std::string out = proc.empty() ? std::string("<program>") : proc;
    if (ref != hir::invalidRef)
        out += csprintf(":ref%d", ref);
    if (!where.empty())
        out += ":" + where;
    return out;
}

std::string
Diagnostic::str() const
{
    return csprintf("%s: %s: [%s] %s", loc.str(), severityName(severity),
                    id, message);
}

void
DiagnosticEngine::report(const std::string &id, Severity sev, SourceLoc loc,
                         const std::string &message)
{
    // Every emitted ID must be cataloged with this exact severity: the
    // catalog is the single source of truth a pass cannot drift from.
    const CatalogEntry *entry = catalogLookup(id);
    hscd_assert(entry, "diagnostic id '%s' is not in the catalog "
                       "(src/verify/catalog.cc)", id.c_str());
    hscd_assert(entry->severity == sev,
                "diagnostic '%s' reported as %s but cataloged as %s",
                id.c_str(), severityName(sev),
                severityName(entry->severity));
    _diags.push_back(Diagnostic{id, sev, std::move(loc), message});
}

std::size_t
DiagnosticEngine::count(Severity s) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : _diags)
        if (d.severity == s)
            ++n;
    return n;
}

std::string
DiagnosticEngine::renderText() const
{
    std::string out;
    for (const Diagnostic &d : _diags)
        out += d.str() + "\n";
    out += csprintf("%s: %d error(s), %d warning(s), %d note(s)\n",
                    _program.empty() ? "<program>" : _program, errors(),
                    warnings(), notes());
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", static_cast<int>(c));
            else
                out += c;
            break;
        }
    }
    return out;
}

std::string
DiagnosticEngine::renderJson(int indent) const
{
    const std::string pad(indent, ' ');
    const std::string pad2(indent + 2, ' ');
    const std::string pad4(indent + 4, ' ');
    std::string out = pad + "{\n";
    out += pad2 + csprintf("\"program\": \"%s\",\n", jsonEscape(_program));
    out += pad2 +
           csprintf("\"counts\": {\"errors\": %d, \"warnings\": %d, "
                    "\"notes\": %d},\n",
                    errors(), warnings(), notes());
    out += pad2 + "\"diagnostics\": [";
    for (std::size_t i = 0; i < _diags.size(); ++i) {
        const Diagnostic &d = _diags[i];
        out += (i ? "," : "") + std::string("\n") + pad4;
        out += csprintf("{\"id\": \"%s\", \"severity\": \"%s\", "
                        "\"proc\": \"%s\", \"ref\": %s, "
                        "\"where\": \"%s\", \"message\": \"%s\"}",
                        jsonEscape(d.id), severityName(d.severity),
                        jsonEscape(d.loc.proc),
                        d.loc.ref == hir::invalidRef
                            ? std::string("null")
                            : std::to_string(d.loc.ref),
                        jsonEscape(d.loc.where), jsonEscape(d.message));
    }
    if (!_diags.empty())
        out += "\n" + pad2;
    out += "]\n" + pad + "}";
    return out;
}

} // namespace verify
} // namespace hscd
