#include "verify/catalog.hh"

#include <set>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace verify {

namespace {

// clang-format off
const CatalogEntry kCatalog[] = {
    {"HIR001", Severity::Error, "hir-lints", "undefined-variable",
     "an expression uses a variable with no enclosing loop or parameter "
     "binding"},
    {"HIR002", Severity::Warning, "hir-lints", "shadowed-variable",
     "a loop index rebinds a live binding (outer loop index or program "
     "parameter)"},
    {"HIR003", Severity::Error, "hir-lints", "subscript-out-of-bounds",
     "a subscript is provably outside [0, extent) for every dynamic "
     "instance"},
    {"HIR004", Severity::Warning, "hir-lints", "empty-doall",
     "a DOALL's bounds are provably empty; it still costs two epoch "
     "boundaries"},
    {"HIR005", Severity::Note, "hir-lints", "single-trip-doall",
     "a DOALL provably runs exactly one iteration (serial in effect)"},
    {"HIR006", Severity::Error, "hir-lints", "wait-without-post",
     "a wait on a provably-constant flag that no post can ever match "
     "(guaranteed deadlock)"},
    {"HIR007", Severity::Note, "hir-lints", "post-without-wait",
     "a post on a constant flag that no wait ever consumes (dead "
     "synchronization)"},
    {"GRAPH001", Severity::Warning, "graph-lints", "unreachable-epoch",
     "an epoch node with no path from the program entry; its references "
     "are dead and its marks meaningless"},
    {"GRAPH002", Severity::Error, "graph-lints", "distance-exceeds-timetag",
     "a Time-Read distance operand larger than the configured timetag "
     "width can represent; the compiler must saturate, not rely on "
     "hardware clamping"},
    {"GRAPH003", Severity::Error, "graph-lints", "bypass-on-unprotected",
     "a Bypass mark on a read that neither a critical section nor "
     "post/wait synchronization justifies"},
    {"GRAPH004", Severity::Warning, "graph-lints", "write-write-conflict",
     "two DOALL tasks provably write the same word in one epoch instance "
     "with no lock or post/wait ordering (nondeterministic final value)"},
    {"ORACLE001", Severity::Error, "stale-marking-oracle", "under-marked-read",
     "the compiler's mark is weaker than the word-exact oracle requires: "
     "a stale hit is reachable (soundness bug)"},
    {"ORACLE002", Severity::Note, "stale-marking-oracle", "over-marked-reads",
     "summary note: reads marked more conservatively than the word-exact "
     "oracle requires (precision loss, not unsoundness)"},
    {"MARK001", Severity::Note, "marking-precision", "proven-over-conservative",
     "a Time-Read (or Bypass) whose proven-minimal sound mark is strictly "
     "weaker: the exact minimal epoch distance is larger than marked, or "
     "the read is provably never stale; `--tighten` rewrites these"},
    {"MARK002", Severity::Note, "marking-precision", "redundant-marking",
     "a Time-Read dominated by an earlier Time-Read of a containing "
     "section in the same epoch at an equal-or-stricter distance: it can "
     "never refetch on TPI (modulo tag resets) yet costs a refetch on SC"},
    {"MARK003", Severity::Note, "marking-precision", "distance-saturation",
     "the true minimal epoch distance exceeds the 2^timetagBits - 1 "
     "window, so the saturated operand will refetch fresh data whenever "
     "the tag ages out (the static predictor of CONSERVATIVE misses)"},
};
// clang-format on

constexpr std::size_t kCatalogCount =
    sizeof(kCatalog) / sizeof(kCatalog[0]);

/** One-time uniqueness check over the table (IDs and rule names). */
bool
checkUnique()
{
    std::set<std::string> ids, names;
    for (const CatalogEntry &e : kCatalog) {
        hscd_assert(ids.insert(e.id).second,
                    "duplicate diagnostic id '%s' in the catalog", e.id);
        hscd_assert(names.insert(e.name).second,
                    "duplicate diagnostic name '%s' in the catalog",
                    e.name);
    }
    return true;
}

} // namespace

const CatalogEntry *
diagnosticCatalog(std::size_t &count)
{
    static const bool checked = checkUnique();
    (void)checked;
    count = kCatalogCount;
    return kCatalog;
}

const CatalogEntry *
catalogLookup(const std::string &id)
{
    std::size_t n = 0;
    const CatalogEntry *table = diagnosticCatalog(n);
    for (std::size_t i = 0; i < n; ++i)
        if (id == table[i].id)
            return &table[i];
    return nullptr;
}

std::size_t
catalogIndex(const std::string &id)
{
    std::size_t n = 0;
    const CatalogEntry *table = diagnosticCatalog(n);
    for (std::size_t i = 0; i < n; ++i)
        if (id == table[i].id)
            return i;
    hscd_assert(false, "diagnostic id '%s' is not cataloged", id.c_str());
    return 0;
}

std::string
catalogMarkdown()
{
    std::string out =
        "# Diagnostic catalog\n"
        "\n"
        "Generated from `src/verify/catalog.cc` by `hscd_lint "
        "--catalog`; do not edit by hand\n"
        "(`ctest -R lint.catalog` pins this file to the table).\n"
        "\n"
        "Severity contract: errors always fail the lint; warnings fail "
        "under `--werror`;\nnotes never affect the exit status.\n"
        "\n"
        "| ID | severity | pass | name | meaning |\n"
        "|----|----------|------|------|---------|\n";
    std::size_t n = 0;
    const CatalogEntry *table = diagnosticCatalog(n);
    for (std::size_t i = 0; i < n; ++i) {
        const CatalogEntry &e = table[i];
        out += csprintf("| %s | %s | `%s` | %s | %s |\n", e.id,
                        severityName(e.severity), e.pass, e.name,
                        e.summary);
    }
    return out;
}

} // namespace verify
} // namespace hscd
