/**
 * @file
 * HIR well-formedness lints (diagnostic ids HIR001..HIR007).
 *
 * The walker starts at MAIN and virtually inlines calls, mirroring how
 * the compiler and the executor see the program: a callee may legally
 * use a caller's loop variable, so bindings are checked along inlined
 * paths, not per procedure in isolation. Statements reached through
 * several call paths are reported once (deduplicated by statement).
 *
 *  HIR001 (error)   undefined-variable: an expression uses a variable
 *                   with no enclosing loop or parameter binding.
 *  HIR002 (warning) shadowed-variable: a loop index rebinds a live
 *                   binding (outer loop index or program parameter).
 *  HIR003 (error)   subscript-out-of-bounds: a subscript is provably
 *                   outside [0, extent) for every dynamic instance.
 *  HIR004 (warning) empty-doall: a DOALL's bounds are provably empty.
 *  HIR005 (note)    single-trip-doall: a DOALL provably runs exactly
 *                   one iteration (serial in effect).
 *  HIR006 (error)   wait-without-post: a wait on a provably-constant
 *                   flag that no post can ever match.
 *  HIR007 (note)    post-without-wait: a post on a constant flag that
 *                   no wait ever consumes.
 */

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/strutil.hh"
#include "verify/pass.hh"

namespace hscd {
namespace verify {

namespace {

using hir::ArrayRefStmt;
using hir::CallStmt;
using hir::CriticalStmt;
using hir::IfUnknownStmt;
using hir::IntExpr;
using hir::LoopStmt;
using hir::Program;
using hir::Range;
using hir::Stmt;
using hir::StmtKind;
using hir::StmtList;
using hir::SyncStmt;

class HirLintPass : public LintPass
{
  public:
    const char *name() const override { return "hir-lints"; }

    std::vector<std::string>
    ids() const override
    {
        return {"HIR001", "HIR002", "HIR003", "HIR004", "HIR005",
                "HIR006", "HIR007"};
    }

    void
    run(const compiler::CompiledProgram &cp, const LintOptions &,
        AnalysisCache &, DiagnosticEngine &diags) override
    {
        _prog = &cp.program;
        _diags = &diags;
        _bindCount.clear();
        _ranges.clear();
        _reported.clear();
        _posts.clear();
        _waits.clear();

        for (const auto &[name, value] : _prog->params().vars()) {
            _bindCount[name] = 1;
            _ranges[name] = Range{value, value};
        }

        _procStack.push_back(_prog->mainIndex());
        walk(_prog->main().body);
        _procStack.pop_back();
        checkSyncPairs();
    }

  private:
    /** Provable constant value of @p e under current ranges, if any. */
    std::optional<std::int64_t>
    constantOf(const IntExpr &e) const
    {
        auto r = e.range(_ranges);
        if (r && r->lo == r->hi)
            return r->lo;
        return std::nullopt;
    }

    /** Report once per (id, site) even across repeated inlining. */
    bool
    once(const std::string &id, const void *site, const std::string &extra)
    {
        return _reported.insert(csprintf("%s/%p/%s", id, site, extra))
            .second;
    }

    std::string
    procName() const
    {
        return _prog->procedures()[_procStack.back()].name;
    }

    void
    checkExprDefined(const IntExpr &e, const void *site,
                     const std::string &what)
    {
        for (const std::string &v : e.variables()) {
            auto it = _bindCount.find(v);
            if (it != _bindCount.end() && it->second > 0)
                continue;
            if (once("HIR001", site, v)) {
                _diags->report(
                    "HIR001", Severity::Error,
                    SourceLoc{procName(), hir::invalidRef, e.str()},
                    csprintf("undefined variable '%s' in %s '%s' (no "
                             "enclosing loop or parameter binds it)",
                             v, what, e.str()));
            }
        }
    }

    void
    checkRef(const ArrayRefStmt &ref)
    {
        const hir::ArrayDecl &decl = _prog->array(ref.array);
        for (std::size_t d = 0; d < ref.subs.size(); ++d) {
            const IntExpr &e = ref.subs[d];
            checkExprDefined(e, &ref, "subscript of " + decl.name);
            if (d >= decl.dims.size())
                continue;
            auto r = e.range(_ranges);
            if (!r)
                continue;
            const std::int64_t extent = decl.dims[d];
            if ((r->hi < 0 || r->lo >= extent) &&
                once("HIR003", &ref, std::to_string(d)))
            {
                _diags->report(
                    "HIR003", Severity::Error,
                    SourceLoc::ofRef(*_prog, ref.id),
                    csprintf("subscript %d of %s is provably out of "
                             "bounds: value in [%d, %d], extent %d",
                             d, decl.name, r->lo, r->hi, extent));
            }
        }
    }

    void
    enterLoop(const LoopStmt &l)
    {
        checkExprDefined(l.lo, &l, "lower bound of loop " + l.var);
        checkExprDefined(l.hi, &l, "upper bound of loop " + l.var);

        auto it = _bindCount.find(l.var);
        if (it != _bindCount.end() && it->second > 0 &&
            once("HIR002", &l, ""))
        {
            _diags->report(
                "HIR002", Severity::Warning,
                SourceLoc{procName(), hir::invalidRef, l.var},
                csprintf("loop index '%s' shadows an enclosing binding "
                         "of the same name", l.var));
        }

        auto lo = l.lo.range(_ranges);
        auto hi = l.hi.range(_ranges);
        if (l.parallel && lo && hi) {
            if (hi->hi < lo->lo) {
                if (once("HIR004", &l, "")) {
                    _diags->report(
                        "HIR004", Severity::Warning,
                        SourceLoc{procName(), hir::invalidRef, l.var},
                        csprintf("DOALL '%s' is provably empty (bounds "
                                 "[%d..%d]); it still costs two epoch "
                                 "boundaries", l.var, lo->lo, hi->hi));
                }
            } else if (lo->lo == lo->hi && hi->lo == hi->hi &&
                       lo->lo + l.step > hi->hi)
            {
                if (once("HIR005", &l, "")) {
                    _diags->report(
                        "HIR005", Severity::Note,
                        SourceLoc{procName(), hir::invalidRef, l.var},
                        csprintf("DOALL '%s' provably runs a single "
                                 "iteration: serial in effect, but pays "
                                 "the parallel-epoch boundaries", l.var));
                }
            }
        }

        // Bind the index for the body.
        ++_bindCount[l.var];
        _rangeSaves.emplace_back(l.var, lookupRange(l.var));
        if (lo && hi && lo->lo <= hi->hi)
            _ranges[l.var] = Range{lo->lo, hi->hi};
        else
            _ranges.erase(l.var); // unknowable: leave it unranged
    }

    std::optional<Range>
    lookupRange(const std::string &v) const
    {
        auto it = _ranges.find(v);
        return it == _ranges.end() ? std::nullopt
                                   : std::optional<Range>(it->second);
    }

    void
    leaveLoop(const LoopStmt &l)
    {
        --_bindCount[l.var];
        auto [var, saved] = std::move(_rangeSaves.back());
        _rangeSaves.pop_back();
        if (saved)
            _ranges[var] = *saved;
        else
            _ranges.erase(var);
    }

    void
    checkSync(const SyncStmt &s)
    {
        checkExprDefined(s.flag, &s,
                         s.isPost ? "post flag" : "wait flag");
        SyncSite site;
        site.stmt = &s;
        site.proc = procName();
        site.flag = constantOf(s.flag);
        site.rendered = s.flag.str();
        (s.isPost ? _posts : _waits).push_back(std::move(site));
    }

    void
    checkSyncPairs()
    {
        bool variable_post = false;
        std::set<std::int64_t> posted;
        for (const SyncSite &p : _posts) {
            if (p.flag)
                posted.insert(*p.flag);
            else
                variable_post = true;
        }
        bool variable_wait = false;
        std::set<std::int64_t> awaited;
        for (const SyncSite &w : _waits) {
            if (w.flag)
                awaited.insert(*w.flag);
            else
                variable_wait = true;
        }

        // A wait on a constant flag no post can produce is a guaranteed
        // deadlock. Only provable when every post is constant too.
        if (!variable_post) {
            for (const SyncSite &w : _waits) {
                if (!w.flag || posted.count(*w.flag))
                    continue;
                if (once("HIR006", w.stmt, ""))
                    _diags->report(
                        "HIR006", Severity::Error,
                        SourceLoc{w.proc, hir::invalidRef, w.rendered},
                        csprintf("wait(%d) can never be posted: every "
                                 "post flag is a constant and none "
                                 "equals %d (guaranteed deadlock)",
                                 *w.flag, *w.flag));
            }
        }

        // A constant post no wait consumes is dead synchronization.
        if (!variable_wait) {
            for (const SyncSite &p : _posts) {
                if (!p.flag || awaited.count(*p.flag))
                    continue;
                if (once("HIR007", p.stmt, ""))
                    _diags->report(
                        "HIR007", Severity::Note,
                        SourceLoc{p.proc, hir::invalidRef, p.rendered},
                        csprintf("post(%d) is never awaited: dead "
                                 "synchronization (only its write-buffer "
                                 "drain has an effect)", *p.flag));
            }
        }
    }

    void
    walk(const StmtList &body)
    {
        for (const auto &s : body)
            walkStmt(*s);
    }

    void
    walkStmt(const Stmt &s)
    {
        switch (s.kind()) {
          case StmtKind::ArrayRef:
            checkRef(static_cast<const ArrayRefStmt &>(s));
            break;
          case StmtKind::Loop: {
            const auto &l = static_cast<const LoopStmt &>(s);
            enterLoop(l);
            walk(l.body);
            leaveLoop(l);
            break;
          }
          case StmtKind::IfUnknown: {
            const auto &br = static_cast<const IfUnknownStmt &>(s);
            walk(br.thenBody);
            walk(br.elseBody);
            break;
          }
          case StmtKind::Call: {
            const auto &c = static_cast<const CallStmt &>(s);
            _procStack.push_back(c.callee);
            walk(_prog->procedures()[c.callee].body);
            _procStack.pop_back();
            break;
          }
          case StmtKind::Critical:
            walk(static_cast<const CriticalStmt &>(s).body);
            break;
          case StmtKind::Sync:
            checkSync(static_cast<const SyncStmt &>(s));
            break;
          default:
            break;
        }
    }

    struct SyncSite
    {
        const SyncStmt *stmt = nullptr;
        std::string proc;
        std::optional<std::int64_t> flag;
        std::string rendered;
    };

    const Program *_prog = nullptr;
    DiagnosticEngine *_diags = nullptr;
    std::map<std::string, int> _bindCount;
    std::map<std::string, Range> _ranges;
    std::vector<std::pair<std::string, std::optional<Range>>> _rangeSaves;
    std::vector<hir::ProcIndex> _procStack;
    std::set<std::string> _reported;
    std::vector<SyncSite> _posts;
    std::vector<SyncSite> _waits;
};

} // namespace

std::unique_ptr<LintPass>
makeHirLintPass()
{
    return std::make_unique<HirLintPass>();
}

} // namespace verify
} // namespace hscd
