/**
 * @file
 * Umbrella header for the coherence soundness verifier: diagnostic
 * engine and ID catalog, lint pass manager, the stale-marking oracle,
 * the dataflow engine, the marking-precision analyses, and the SARIF
 * renderer.
 */

#ifndef HSCD_VERIFY_VERIFY_HH
#define HSCD_VERIFY_VERIFY_HH

#include "verify/catalog.hh"
#include "verify/dataflow.hh"
#include "verify/diagnostic.hh"
#include "verify/oracle.hh"
#include "verify/pass.hh"
#include "verify/precision.hh"
#include "verify/sarif.hh"

#endif // HSCD_VERIFY_VERIFY_HH
