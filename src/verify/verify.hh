/**
 * @file
 * Umbrella header for the coherence soundness verifier: diagnostic
 * engine, lint pass manager, and the stale-marking oracle.
 */

#ifndef HSCD_VERIFY_VERIFY_HH
#define HSCD_VERIFY_VERIFY_HH

#include "verify/diagnostic.hh"
#include "verify/oracle.hh"
#include "verify/pass.hh"

#endif // HSCD_VERIFY_VERIFY_HH
