/**
 * @file
 * Lint pass manager for the coherence soundness verifier.
 *
 * A LintPass inspects one CompiledProgram and reports findings through
 * the DiagnosticEngine. The PassManager owns a pipeline of passes and
 * runs them in registration order, so lint output is deterministic.
 * Passes declare the diagnostic IDs they may emit; registration asserts
 * every declared ID is cataloged (verify/catalog.hh) and claimed by at
 * most one pass, so an ID's meaning can never silently fork.
 *
 * Expensive shared analyses (the word-granular oracle) are computed
 * once per lint through the AnalysisCache that runAll() threads through
 * every pass: the oracle pass, the marking-precision passes, and the
 * write-write conflict lint all consume one OracleReport.
 *
 * Four pass families ship with the repo (see verify.hh):
 *  - HIR well-formedness lints (HIRxxx)      - hir_lints.cc
 *  - epoch-graph structural lints (GRAPHxxx) - graph_lints.cc
 *  - the stale-marking soundness oracle (ORACLExxx) - oracle.cc
 *  - marking-precision analysis (MARKxxx)    - mark_lints.cc
 */

#ifndef HSCD_VERIFY_PASS_HH
#define HSCD_VERIFY_PASS_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/analysis.hh"
#include "verify/diagnostic.hh"

namespace hscd {
namespace verify {

struct OracleReport;

struct LintOptions
{
    /**
     * Timetag width used by GRAPH002 and the oracle's distance clamp.
     * Must match the MachineConfig the program will run on; the default
     * is the paper's 8-bit tag (Figure 8).
     */
    unsigned timetagBits = 8;
    /** Run the (relatively expensive) stale-marking oracle. The
     *  marking-precision (MARK) and write-write conflict (GRAPH004)
     *  analyses build on the oracle's word-exact footprints, so this
     *  gates them too. */
    bool runOracle = true;
    /**
     * Word-enumeration budget per reference footprint in the oracle;
     * beyond it the footprint widens to the whole array (stays sound,
     * loses the precision needed to prove over-marking).
     */
    std::uint64_t oracleWordCap = 1u << 22;
    /**
     * Machine model the oracle verifies against: serial epochs are
     * pinned to processor 0 (true for the paper's runtime; the compiler
     * setting AnalysisOptions::assumeSerialAffinity says whether the
     * *marking* exploited that). Set false to check a marking for a
     * runtime that migrates serial epochs: affinity-based Normal marks
     * then surface as ORACLE001 under-markings.
     */
    bool serialAffinity = true;
};

/**
 * Analyses shared across passes in one lint run, computed lazily so a
 * pipeline that never asks (e.g. with runOracle off) pays nothing and
 * the word enumeration happens at most once per program.
 */
class AnalysisCache
{
  public:
    AnalysisCache();
    ~AnalysisCache();

    AnalysisCache(const AnalysisCache &) = delete;
    AnalysisCache &operator=(const AnalysisCache &) = delete;

    /** The word-granular oracle report for @p cp (built on first use). */
    const OracleReport &oracle(const compiler::CompiledProgram &cp,
                               const LintOptions &opts);

  private:
    std::unique_ptr<OracleReport> _oracle;
};

class LintPass
{
  public:
    virtual ~LintPass() = default;

    virtual const char *name() const = 0;
    /** Diagnostic IDs this pass may emit (checked at registration). */
    virtual std::vector<std::string> ids() const = 0;
    virtual void run(const compiler::CompiledProgram &cp,
                     const LintOptions &opts, AnalysisCache &cache,
                     DiagnosticEngine &diags) = 0;
};

/** Factories for the stock pass families. */
std::unique_ptr<LintPass> makeHirLintPass();
std::unique_ptr<LintPass> makeGraphLintPass();
std::unique_ptr<LintPass> makeOraclePass();
std::unique_ptr<LintPass> makeMarkLintPass();

class PassManager
{
  public:
    /** Register @p pass; asserts its declared IDs are cataloged under
     *  this pass's name and not already claimed. */
    void add(std::unique_ptr<LintPass> pass);

    const std::vector<std::unique_ptr<LintPass>> &
    passes() const
    {
        return _passes;
    }

    void
    runAll(const compiler::CompiledProgram &cp, const LintOptions &opts,
           AnalysisCache &cache, DiagnosticEngine &diags) const
    {
        for (const auto &p : _passes)
            p->run(cp, opts, cache, diags);
    }

    /** The standard pipeline: HIR, graph, oracle, marking precision. */
    static PassManager standard();

  private:
    std::vector<std::unique_ptr<LintPass>> _passes;
    std::vector<std::string> _claimed;
};

/** Run the standard pipeline over @p cp and return the diagnostics. */
DiagnosticEngine lintProgram(const compiler::CompiledProgram &cp,
                             const std::string &program_name,
                             const LintOptions &opts = {});

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_PASS_HH
