/**
 * @file
 * Lint pass manager for the coherence soundness verifier.
 *
 * A LintPass inspects one CompiledProgram and reports findings through
 * the DiagnosticEngine. The PassManager owns a pipeline of passes and
 * runs them in registration order, so lint output is deterministic.
 *
 * Three pass families ship with the repo (see verify.hh):
 *  - HIR well-formedness lints (HIRxxx)      - hir_lints.cc
 *  - epoch-graph structural lints (GRAPHxxx) - graph_lints.cc
 *  - the stale-marking soundness oracle (ORACLExxx) - oracle.cc
 */

#ifndef HSCD_VERIFY_PASS_HH
#define HSCD_VERIFY_PASS_HH

#include <memory>
#include <vector>

#include "compiler/analysis.hh"
#include "verify/diagnostic.hh"

namespace hscd {
namespace verify {

struct LintOptions
{
    /**
     * Timetag width used by GRAPH002 and the oracle's distance clamp.
     * Must match the MachineConfig the program will run on; the default
     * is the paper's 8-bit tag (Figure 8).
     */
    unsigned timetagBits = 8;
    /** Run the (relatively expensive) stale-marking oracle. */
    bool runOracle = true;
    /**
     * Word-enumeration budget per reference footprint in the oracle;
     * beyond it the footprint widens to the whole array (stays sound,
     * loses the precision needed to prove over-marking).
     */
    std::uint64_t oracleWordCap = 1u << 22;
};

class LintPass
{
  public:
    virtual ~LintPass() = default;

    virtual const char *name() const = 0;
    virtual void run(const compiler::CompiledProgram &cp,
                     const LintOptions &opts, DiagnosticEngine &diags) = 0;
};

/** Factories for the stock pass families. */
std::unique_ptr<LintPass> makeHirLintPass();
std::unique_ptr<LintPass> makeGraphLintPass();
std::unique_ptr<LintPass> makeOraclePass();

class PassManager
{
  public:
    void
    add(std::unique_ptr<LintPass> pass)
    {
        _passes.push_back(std::move(pass));
    }

    const std::vector<std::unique_ptr<LintPass>> &
    passes() const
    {
        return _passes;
    }

    void
    runAll(const compiler::CompiledProgram &cp, const LintOptions &opts,
           DiagnosticEngine &diags) const
    {
        for (const auto &p : _passes)
            p->run(cp, opts, diags);
    }

    /** The standard pipeline: HIR lints, graph lints, oracle. */
    static PassManager standard();

  private:
    std::vector<std::unique_ptr<LintPass>> _passes;
};

/** Run the standard pipeline over @p cp and return the diagnostics. */
DiagnosticEngine lintProgram(const compiler::CompiledProgram &cp,
                             const std::string &program_name,
                             const LintOptions &opts = {});

} // namespace verify
} // namespace hscd

#endif // HSCD_VERIFY_PASS_HH
