/**
 * @file
 * Umbrella header: everything a downstream user needs to describe a
 * parallel program, run the HSCD coherence compiler, and simulate it.
 *
 * @code
 *   #include "hscd/hscd.hh"
 *
 *   hscd::hir::ProgramBuilder b;
 *   ... build a program ...
 *   auto cp  = hscd::compiler::compileProgram(b.build());
 *   hscd::MachineConfig cfg;           // paper Figure 8 defaults
 *   cfg.scheme = hscd::SchemeKind::TPI;
 *   auto res = hscd::sim::simulate(cp, cfg);
 * @endcode
 */

#ifndef HSCD_HSCD_HH
#define HSCD_HSCD_HH

#include "common/config.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"
#include "mem/coherence.hh"
#include "mem/machine_config.hh"
#include "mem/storage_model.hh"
#include "network/kruskal_snir.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "verify/verify.hh"
#include "workloads/workloads.hh"

#endif // HSCD_HSCD_HH
