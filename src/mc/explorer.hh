/**
 * @file
 * Breadth-first explicit-state exploration of the TPI model.
 *
 * Classic explicit-state model checking: states are deduplicated by a
 * hashed canonical encoding (value abstraction + processor symmetry
 * reduction, see mc/model.hh), every state keeps a parent edge, and the
 * first invariant violation is returned as the shortest action path
 * from the initial state — a replayable counterexample.
 *
 * BFS doubles as the liveness check: exploration terminates (the state
 * space is finite under the epoch horizon), every non-terminal state
 * has an enabled action (deadlock-freedom is checked explicitly), and
 * every terminal state either completed the horizon or carries a
 * structured abort from retry exhaustion — so within the explored
 * bound, every request completes or aborts cleanly.
 */

#ifndef HSCD_MC_EXPLORER_HH
#define HSCD_MC_EXPLORER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/model.hh"

namespace hscd {
namespace mc {

struct ExploreOptions
{
    /** Canonicalize modulo processor permutation. */
    bool symmetry = true;
    /** Abandon the search (verdict "bounded") past this many states. */
    std::uint64_t maxStates = 8'000'000;
};

/** Shortest action path from the initial state to a violation. */
struct Counterexample
{
    std::vector<Action> path;
    InvariantId invariant = InvariantId::None;
    std::string detail;

    std::string str() const;
};

struct ExploreResult
{
    std::uint64_t states = 0;       ///< unique states (mod symmetry)
    std::uint64_t transitions = 0;  ///< guarded actions fired
    std::uint64_t maxDepth = 0;     ///< longest action path explored
    std::uint64_t completed = 0;    ///< terminal: horizon reached
    std::uint64_t aborted = 0;      ///< terminal: structured abort
    bool hitStateCap = false;
    std::optional<Counterexample> cex;

    /** Exhaustive and violation-free. */
    bool clean() const { return !cex && !hitStateCap; }
};

/** Exhaustively explore @p cfg's state space. */
ExploreResult explore(const McConfig &cfg, const ExploreOptions &opt = {});

/**
 * One deterministic pseudo-random maximal run (initial state to a
 * terminal state), derived purely from @p seed. Used to cross-check the
 * model against the real TpiScheme on full paths, not just on
 * counterexamples.
 */
std::vector<Action> randomWalk(const McConfig &cfg, std::uint64_t seed);

} // namespace mc
} // namespace hscd

#endif // HSCD_MC_EXPLORER_HH
