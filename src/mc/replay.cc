#include "mc/replay.hh"

#include "common/log.hh"
#include "mem/memory.hh"

namespace hscd {
namespace mc {

using compiler::MarkKind;
using mem::ValueStamp;

MachineConfig
machineConfigFor(const McConfig &cfg)
{
    MachineConfig mcfg;
    mcfg.procs = cfg.procs;
    mcfg.scheme = SchemeKind::TPI;
    mcfg.lineBytes = cfg.lineWords * 4;
    mcfg.timetagBits = cfg.timetagBits;
    mcfg.tpiPromoteOnHit = cfg.promote;
    mcfg.tpiUseDistance = true;
    mcfg.faultMaxRetries = cfg.maxRetries;
    // Faults come exclusively from the script: the probabilistic plan
    // stays at rate 0 so nothing else fires.
    return mcfg;
}

EmittedRun
emitRun(const McConfig &cfg, const std::vector<Action> &path)
{
    EmittedRun run;
    State s = initialState(cfg);

    ValueStamp nextStamp = 1;
    ValueStamp memStamp[kMaxWords] = {};
    ValueStamp copyStamp[kMaxProcs][kMaxWords] = {};

    // Injection-opportunity counters, mirroring the implementation:
    // one net.deliver() per reliableSend attempt, one mem.tag firing
    // per read that found its line resident, one mem.epoch firing per
    // barrier. All 1-based (FaultInjector counts ++_fires).
    std::uint64_t delivers = 0;
    std::uint64_t tagReads = 0;
    std::uint64_t barriers = 0;
    std::uint64_t accesses = 0;

    auto refillStamps = [&](unsigned p, unsigned w) {
        const unsigned line = w / cfg.lineWords;
        for (unsigned j = 0; j < cfg.lineWords; ++j) {
            const unsigned v = line * cfg.lineWords + j;
            copyStamp[p][v] = memStamp[v];
        }
    };

    auto scriptDrops = [&](const Action &a) {
        if (a.fault == Action::Fault::DropRecover) {
            // First attempt dropped, retransmission delivered.
            run.script.push_back(
                {fault::Site::NetDrop, ++delivers, 0});
            ++delivers;
        } else if (a.fault == Action::Fault::DropAbort) {
            // Every attempt dropped until the retry budget runs out.
            for (unsigned k = 0; k <= cfg.maxRetries; ++k)
                run.script.push_back(
                    {fault::Site::NetDrop, ++delivers, 0});
            run.expectAbort = true;
        } else {
            ++delivers; // clean delivery still advances the counter
        }
    };

    for (const Action &a : path) {
        hscd_assert(!s.aborted, "mc: action path continues past abort");
        Outcome out;

        switch (a.kind) {
          case Action::Kind::Finish:
            apply(cfg, s, a, out);
            continue;

          case Action::Kind::Barrier: {
            sim::TraceRecord r;
            r.type = sim::TraceRecord::Type::Boundary;
            r.epoch = EpochId(s.epoch) + 1;
            run.records.push_back(r);
            ++barriers;
            if (a.fault == Action::Fault::EpochFlip)
                run.script.push_back({fault::Site::MemEpochFlip,
                                      barriers, a.flushProc});
            apply(cfg, s, a, out);
            continue;
          }

          case Action::Kind::Write: {
            const unsigned p = a.proc, w = a.word;
            const bool wasPresent = s.present[p][w / cfg.lineWords];
            apply(cfg, s, a, out);

            sim::TraceRecord r;
            r.op.proc = p;
            r.op.addr = Addr(w) * 4;
            r.op.arrayId = 0;
            r.op.write = true;
            r.op.critical = a.critical;
            r.op.stamp = nextStamp;
            run.records.push_back(r);
            ++accesses;

            if (!wasPresent)
                refillStamps(p, w); // write-miss fill precedes the write
            memStamp[w] = nextStamp;
            copyStamp[p][w] = nextStamp;
            ++nextStamp;
            scriptDrops(a);
            if (run.expectAbort)
                return run;
            continue;
          }

          case Action::Kind::Read: {
            const unsigned p = a.proc, w = a.word;
            apply(cfg, s, a, out);

            if (out.lineWasPresent) {
                ++tagReads;
                if (a.fault == Action::Fault::TagFlip)
                    run.script.push_back(
                        {fault::Site::MemTagFlip, tagReads,
                         std::uint64_t(a.faultWord) |
                             (std::uint64_t(a.faultBit) << 32)});
            }

            sim::TraceRecord r;
            r.op.proc = p;
            r.op.addr = Addr(w) * 4;
            r.op.arrayId = 0;
            r.op.mark = a.mark;
            r.op.distance = a.distance;
            run.records.push_back(r);

            EmittedRun::Expect e;
            e.access = accesses++;
            e.hit = out.hit;
            e.cls = out.cls;
            if (out.hit) {
                e.observed = copyStamp[p][w];
            } else if (a.mark == MarkKind::Bypass) {
                e.observed = memStamp[w];
                if (out.lineWasPresent)
                    copyStamp[p][w] = memStamp[w];
            } else {
                refillStamps(p, w);
                e.observed = memStamp[w];
            }

            if (out.sends) {
                scriptDrops(a);
                if (run.expectAbort)
                    return run; // the aborting access emits no outcome
            }
            run.expects.push_back(e);
            continue;
          }
        }
    }
    return run;
}

namespace {

/** Diffs the real scheme's outcome stream against the model's. */
class ComparingSink : public sim::TraceSink
{
  public:
    explicit ComparingSink(const EmittedRun &run) : _run(run) {}

    void onAccess(const mem::MemOp &) override {}
    void onBoundary(EpochId) override {}

    void
    onOutcome(const mem::MemOp &op, const mem::AccessResult &res,
              EpochId epoch) override
    {
        const std::size_t ordinal = _ordinal++;
        if (_next >= _run.expects.size())
            return;
        const EmittedRun::Expect &e = _run.expects[_next];
        if (e.access != ordinal)
            return; // a write: no expectation recorded
        ++_next;
        ++compared;
        if (!ok)
            return;
        if (res.hit != e.hit || res.cls != e.cls ||
            res.observed != e.observed)
        {
            ok = false;
            detail = csprintf(
                "access %d (proc %d addr %d epoch %d): model expected "
                "%s/%s/stamp %d, implementation returned %s/%s/stamp %d",
                ordinal, op.proc, op.addr, epoch,
                e.hit ? "hit" : "miss", mem::missClassName(e.cls),
                e.observed, res.hit ? "hit" : "miss",
                mem::missClassName(res.cls), res.observed);
        }
    }

    bool ok = true;
    std::uint64_t compared = 0;
    std::string detail;

  private:
    const EmittedRun &_run;
    std::size_t _ordinal = 0;
    std::size_t _next = 0;
};

} // namespace

CheckReport
crossCheck(const McConfig &cfg, const std::vector<Action> &path)
{
    EmittedRun run = emitRun(cfg, path);
    MachineConfig mcfg = machineConfigFor(cfg);

    ComparingSink sink(run);
    sim::ReplayResult res =
        sim::replayTrace(run.records, mcfg, Addr(cfg.words) * 4, &sink,
                         &run.script);

    CheckReport report;
    report.ok = sink.ok;
    report.compared = sink.compared;
    report.detail = sink.detail;
    if (report.ok && res.aborted() != run.expectAbort) {
        report.ok = false;
        report.detail = csprintf(
            "model %s a protocol abort but the implementation %s",
            run.expectAbort ? "expected" : "did not expect",
            res.aborted() ? csprintf("aborted (%s)", res.abort.reason)
                          : std::string("completed"));
    }
    if (report.ok && run.expectAbort &&
        res.abort.kind != fault::AbortKind::Protocol)
    {
        report.ok = false;
        report.detail = csprintf("expected a Protocol abort, got kind %d",
                                 int(res.abort.kind));
    }
    if (report.ok && sink.compared != run.expects.size()) {
        report.ok = false;
        report.detail = csprintf("compared %d of %d expected outcomes",
                                 sink.compared, run.expects.size());
    }
    return report;
}

} // namespace mc
} // namespace hscd
