/**
 * @file
 * Model-to-implementation bridge: turn an action path of the TPI model
 * into a concrete memory trace plus a scripted fault sequence, then
 * replay it through the real TpiScheme (sim::replayTrace) and compare
 * outcome streams — hit/miss, miss class, observed value stamp per
 * read, and the structured-abort verdict.
 *
 * This is what makes a model counterexample actionable: the emitted
 * trace reproduces the exact interleaving byte-identically on the
 * implementation, with every injected fault scripted at its precise
 * injection opportunity (nth mem.tag firing on a resident-line read,
 * nth net.deliver for drops, nth barrier for epoch flips). It is also
 * the standing evidence that the model *is* the implementation:
 * cross-checking pseudo-random full paths is part of the checker's
 * verdict.
 */

#ifndef HSCD_MC_REPLAY_HH
#define HSCD_MC_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "mc/model.hh"
#include "mem/machine_config.hh"
#include "mem/memory.hh"
#include "sim/trace.hh"

namespace hscd {
namespace mc {

/** MachineConfig realizing @p cfg's machine shape on the real scheme. */
MachineConfig machineConfigFor(const McConfig &cfg);

/** A model run lowered to implementation terms. */
struct EmittedRun
{
    std::vector<sim::TraceRecord> records;
    std::vector<fault::ScriptedFault> script;

    /** Expected scheme verdict for one access record (reads only). */
    struct Expect
    {
        std::size_t access = 0; ///< ordinal among Access records
        bool hit = false;
        mem::MissClass cls = mem::MissClass::None;
        mem::ValueStamp observed = 0;
    };
    std::vector<Expect> expects;

    /** The run ends in a Protocol abort (retry exhaustion). */
    bool expectAbort = false;
};

/** Lower @p path (from explore()'s counterexample or randomWalk()). */
EmittedRun emitRun(const McConfig &cfg, const std::vector<Action> &path);

/** Outcome of replaying a lowered run on the real implementation. */
struct CheckReport
{
    bool ok = true;
    std::uint64_t compared = 0; ///< read outcomes compared
    std::string detail;         ///< first divergence, human-readable
};

/** Replay @p path through the real TpiScheme and diff every outcome. */
CheckReport crossCheck(const McConfig &cfg,
                       const std::vector<Action> &path);

} // namespace mc
} // namespace hscd

#endif // HSCD_MC_REPLAY_HH
