#include "mc/explorer.hh"

#include <algorithm>
#include <unordered_map>

#include "common/log.hh"

namespace hscd {
namespace mc {

std::string
Counterexample::str() const
{
    std::string out = csprintf("%s violated: %s\n",
                               invariantName(invariant), detail);
    out += csprintf("counterexample (%d steps):\n", path.size());
    for (std::size_t i = 0; i < path.size(); ++i)
        out += csprintf("  %2d. %s\n", i + 1, path[i].str());
    return out;
}

namespace {

struct Node
{
    State state;
    std::uint32_t parent = 0;
    std::uint32_t action = 0;
    std::uint16_t depth = 0;
};

std::vector<Action>
pathTo(const std::vector<Node> &nodes, std::uint32_t id)
{
    std::vector<Action> path;
    while (id != 0) {
        path.push_back(Action::decode(nodes[id].action));
        id = nodes[id].parent;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::uint64_t
splitmix(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

ExploreResult
explore(const McConfig &cfg, const ExploreOptions &opt)
{
    cfg.validate();
    ExploreResult res;

    std::vector<Node> nodes;
    std::unordered_map<std::string, std::uint32_t> seen;
    nodes.push_back(Node{initialState(cfg), 0, 0, 0});
    seen.emplace(canonicalKey(cfg, nodes[0].state, opt.symmetry), 0);

    std::vector<Action> acts;
    for (std::uint32_t head = 0; head < nodes.size(); ++head) {
        // Copy: apply() below may reallocate `nodes`.
        const State cur = nodes[head].state;
        const std::uint16_t depth = nodes[head].depth;
        res.maxDepth = std::max<std::uint64_t>(res.maxDepth, depth);

        if (isTerminal(cfg, cur)) {
            ++(cur.aborted ? res.aborted : res.completed);
            continue;
        }

        enumerate(cfg, cur, acts);
        if (acts.empty()) {
            // Structurally impossible (Finish/Barrier are always
            // enabled), but check rather than assume: this *is* the
            // deadlock-freedom invariant.
            res.cex = Counterexample{
                pathTo(nodes, head), InvariantId::Deadlock,
                csprintf("no enabled action in epoch %d", int(cur.epoch))};
            break;
        }

        for (const Action &a : acts) {
            State next = cur;
            Outcome out;
            apply(cfg, next, a, out);
            ++res.transitions;

            if (out.violated != InvariantId::None) {
                std::vector<Action> path = pathTo(nodes, head);
                path.push_back(a);
                res.cex = Counterexample{std::move(path), out.violated,
                                         out.violation};
                res.states = nodes.size();
                return res;
            }

            std::string key = canonicalKey(cfg, next, opt.symmetry);
            auto [it, fresh] =
                seen.emplace(std::move(key), std::uint32_t(nodes.size()));
            if (!fresh)
                continue;
            if (nodes.size() >= opt.maxStates) {
                res.hitStateCap = true;
                res.states = nodes.size();
                return res;
            }
            nodes.push_back(Node{next, head, a.encode(),
                                 std::uint16_t(depth + 1)});
        }
    }

    res.states = nodes.size();
    return res;
}

std::vector<Action>
randomWalk(const McConfig &cfg, std::uint64_t seed)
{
    cfg.validate();
    std::vector<Action> path;
    State s = initialState(cfg);
    std::uint64_t rng = seed * 0x2545f4914f6cdd1dull + 1;
    std::vector<Action> acts;
    while (!isTerminal(cfg, s)) {
        enumerate(cfg, s, acts);
        hscd_assert(!acts.empty(), "mc: random walk deadlocked");
        const Action &a = acts[splitmix(rng) % acts.size()];
        Outcome out;
        apply(cfg, s, a, out);
        path.push_back(a);
        hscd_assert(path.size() < 100000, "mc: random walk diverged");
    }
    return path;
}

} // namespace mc
} // namespace hscd
