#include "mc/model.hh"

#include <algorithm>
#include <array>

#include "common/log.hh"

namespace hscd {
namespace mc {

using compiler::MarkKind;

void
McConfig::validate() const
{
    if (procs < 2 || procs > kMaxProcs)
        fatal("mc: procs must be 2..%d, got %d", kMaxProcs, procs);
    if (words < 1 || words > kMaxWords)
        fatal("mc: words must be 1..%d, got %d", kMaxWords, words);
    if (lineWords < 1 || words % lineWords != 0)
        fatal("mc: line-words %d must divide words %d", lineWords, words);
    if (lineWords > words)
        fatal("mc: line-words %d exceeds words %d", lineWords, words);
    if (timetagBits < 1 || timetagBits > 3)
        fatal("mc: timetag bits must be 1..3, got %d", timetagBits);
    if (opsPerEpoch < 1 || opsPerEpoch > 8)
        fatal("mc: ops per epoch must be 1..8, got %d", opsPerEpoch);
    if (horizon() < 1 || horizon() > 40)
        fatal("mc: horizon must be 1..40 epochs, got %d", horizon());
    if (faultBudget > 2)
        fatal("mc: fault budget must be 0..2, got %d", faultBudget);
    if (maxRetries < 1 || maxRetries > 8)
        fatal("mc: max retries must be 1..8, got %d", maxRetries);
}

std::string
McConfig::str() const
{
    return csprintf("procs=%d words=%d lineWords=%d bits=%d epochs=%d "
                    "ops=%d faults=%d sites=0x%x crit=%d promote=%d",
                    procs, words, lineWords, timetagBits, horizon(),
                    opsPerEpoch, faultBudget, faultSites,
                    allowCritical ? 1 : 0, promote ? 1 : 0);
}

State
initialState(const McConfig &cfg)
{
    State s;
    s.faultsLeft = static_cast<std::uint8_t>(cfg.faultBudget);
    for (unsigned p = 0; p < kMaxProcs; ++p) {
        s.opsLeft[p] =
            p < cfg.procs ? static_cast<std::uint8_t>(cfg.opsPerEpoch) : 0;
        for (unsigned w = 0; w < kMaxWords; ++w)
            s.lastWriteAge[p][w] = kNoWrite;
    }
    return s;
}

bool
isTerminal(const McConfig &cfg, const State &s)
{
    return s.aborted || s.epoch >= cfg.horizon();
}

const char *
invariantName(InvariantId id)
{
    switch (id) {
      case InvariantId::None:
        return "none";
      case InvariantId::NoStaleRead:
        return "no-stale-read";
      case InvariantId::BoundedTagAge:
        return "bounded-tag-age";
      case InvariantId::ModularAgree:
        return "modular-agreement";
      case InvariantId::Deadlock:
        return "deadlock-freedom";
    }
    return "?";
}

namespace {

constexpr std::uint8_t bit(unsigned p) { return std::uint8_t(1u << p); }

std::int8_t
satAge(int v)
{
    return std::int8_t(std::clamp(v, -int(kAgeCap), int(kAgeCap)));
}

/** Side-effects of TpiScheme::fill(): (re)load a whole line. */
void
fillLine(const McConfig &cfg, State &s, unsigned p, unsigned line,
         unsigned widx)
{
    s.present[p][line] = true;
    s.hist[p][line] = LineHist::Cached;
    for (unsigned j = 0; j < cfg.lineWords; ++j) {
        unsigned v = line * cfg.lineWords + j;
        Copy &c = s.copy[p][v];
        c.stale = false;   // stamps refreshed from memory
        c.tainted = false; // tag state rewritten below
        c.faulted = false;
        if (v == widx) {
            c.valid = true;
            c.age = 0; // tt = EC
        } else if (s.epoch > 0) {
            c.valid = true;
            c.age = 1; // side words vouched only up to EC - 1
        } else {
            c.valid = false;
            c.age = std::int8_t(s.epoch); // tt = 0, invalid at boot
        }
    }
}

/** TpiScheme::flushCache(): mem.epoch resync drops every resident line. */
void
flushCache(const McConfig &cfg, State &s, unsigned q)
{
    for (unsigned l = 0; l < cfg.lines(); ++l) {
        if (!s.present[q][l])
            continue;
        s.present[q][l] = false;
        s.hist[q][l] = LineHist::InvTag;
        for (unsigned j = 0; j < cfg.lineWords; ++j)
            s.copy[q][l * cfg.lineWords + j] = Copy{};
    }
}

/** TpiScheme::maybeCorruptTag() effect for one scripted flip. */
void
tagFlip(const McConfig &cfg, State &s, unsigned p, unsigned line,
        unsigned fwInLine, unsigned b)
{
    Copy &c = s.copy[p][line * cfg.lineWords + fwInLine];
    c.faulted = true;
    if (b == cfg.timetagBits) {
        c.valid = !c.valid;
        // A spuriously-set valid bit may vouch for anything; a cleared
        // one only costs a conservative miss (still tracked as tainted
        // once re-set).
        if (c.valid)
            c.tainted = true;
        return;
    }
    const int tt = int(s.epoch) - int(c.age);
    hscd_assert(tt >= 0, "mc: modelled timetag went negative");
    const int ntt = tt ^ (1 << b);
    if (ntt > tt)
        c.tainted = true; // raised tag: copy may wrongly vouch
    c.age = satAge(int(s.epoch) - ntt);
}

mem::MissClass
classifyAbsent(LineHist h)
{
    // LineHistory::classifyAbsent() restricted to the events TPI can
    // record in an eviction-free geometry.
    switch (h) {
      case LineHist::Never:
        return mem::MissClass::Cold;
      case LineHist::Cached:
        return mem::MissClass::Replacement;
      case LineHist::InvTag:
        return mem::MissClass::TagReset;
    }
    return mem::MissClass::Cold;
}

/** Memory value of @p w changed: every other processor's copy is stale. */
void
markOthersStale(const McConfig &cfg, State &s, unsigned writer, unsigned w)
{
    const unsigned line = w / cfg.lineWords;
    for (unsigned q = 0; q < cfg.procs; ++q) {
        if (q == writer || !s.present[q][line])
            continue;
        s.copy[q][w].stale = true;
    }
}

void
applyDrop(State &s, const Action &a)
{
    if (a.fault == Action::Fault::DropRecover) {
        --s.faultsLeft;
    } else if (a.fault == Action::Fault::DropAbort) {
        --s.faultsLeft;
        s.aborted = true;
    }
}

void
doWrite(const McConfig &cfg, State &s, const Action &a, Outcome &out)
{
    const unsigned p = a.proc, w = a.word;
    const unsigned line = w / cfg.lineWords;
    out.sends = true; // write-through always sends one packet
    if (!s.present[p][line])
        fillLine(cfg, s, p, line, w);
    Copy &c = s.copy[p][w];
    c.stale = false;
    c.tainted = false; // word state fully rewritten
    c.faulted = false;
    if (!a.critical) {
        c.valid = true;
        c.age = 0; // tt = EC
    } else if (s.epoch > 0) {
        c.valid = true;
        c.age = 1; // tt = EC - 1: another lock owner may write later
    } else {
        c.valid = false;
        c.age = std::int8_t(s.epoch); // tt = 0
    }
    markOthersStale(cfg, s, p, w);
    s.lastWriteAge[p][w] = 0;
    if (a.critical)
        s.criticals[w] |= bit(p);
    else
        s.writers[w] |= bit(p);
    applyDrop(s, a);
    --s.opsLeft[p];
}

void
doRead(const McConfig &cfg, State &s, const Action &a, Outcome &out)
{
    const unsigned p = a.proc, w = a.word;
    const unsigned line = w / cfg.lineWords;
    out.isRead = true;
    out.lineWasPresent = s.present[p][line];

    // The implementation corrupts the tag after lookup, before the mark
    // dispatch: the corrupted state decides hit or miss.
    if (a.fault == Action::Fault::TagFlip) {
        tagFlip(cfg, s, p, line, a.faultWord, a.faultBit);
        --s.faultsLeft;
    }

    Copy &c = s.copy[p][w];
    const bool resident = s.present[p][line] && c.valid;

    switch (a.mark) {
      case MarkKind::Normal: {
        if (resident) {
            out.hit = true;
            out.observedStale = c.stale;
            if (c.stale && !c.tainted) {
                out.violated = InvariantId::NoStaleRead;
                out.violation = csprintf(
                    "proc %d Normal-read of word %d hit a stale untainted "
                    "copy (age %d) in epoch %d",
                    p, w, int(c.age), int(s.epoch));
            }
        } else {
            out.cls = s.present[p][line]
                          ? mem::MissClass::TagReset
                          : classifyAbsent(s.hist[p][line]);
            out.sends = true;
            fillLine(cfg, s, p, line, w);
        }
        s.readers[w] |= bit(p);
        break;
      }

      case MarkKind::TimeRead: {
        const int dhw =
            std::min<int>(a.distance, int(cfg.dmax()));
        if (s.present[p][line] && c.valid && !c.faulted) {
            // Wraparound coverage: the reset schedule must keep every
            // consultable *unfaulted* tag inside one modular period, and
            // the n-bit hardware decision must match the unbounded one.
            // (A flipped tag carries no such claim: lowered tags age past
            // dmax and miss conservatively; raised ones are tainted.)
            const int age = c.age;
            if (age < 0 || age > int(cfg.dmax())) {
                out.violated = InvariantId::BoundedTagAge;
                out.violation = csprintf(
                    "proc %d Time-Read of word %d consulted unfaulted tag "
                    "with age %d outside [0, %d] in epoch %d",
                    p, w, age, cfg.dmax(), int(s.epoch));
            }
            const int mod = 1 << cfg.timetagBits;
            const int hwAge = ((age % mod) + mod) % mod;
            if ((hwAge <= dhw) != (age <= dhw) &&
                out.violated == InvariantId::None)
            {
                out.violated = InvariantId::ModularAgree;
                out.violation = csprintf(
                    "proc %d Time-Read(d=%d) of word %d: %d-bit modular "
                    "decision (age %d -> %d) disagrees with unbounded "
                    "tags in epoch %d",
                    p, int(a.distance), w, cfg.timetagBits, age, hwAge,
                    int(s.epoch));
            }
        }
        if (resident && int(c.age) <= dhw) {
            out.hit = true;
            out.observedStale = c.stale;
            if (c.stale && !c.tainted && out.violated == InvariantId::None)
            {
                out.violated = InvariantId::NoStaleRead;
                out.violation = csprintf(
                    "proc %d Time-Read(d=%d) of word %d hit a stale "
                    "untainted copy (age %d) in epoch %d",
                    p, int(a.distance), w, int(c.age), int(s.epoch));
            }
            if (cfg.promote)
                c.age = 0; // proven fresh: promote tt to EC
        } else {
            if (resident)
                out.cls = c.stale ? mem::MissClass::TrueShare
                                  : mem::MissClass::Conservative;
            else if (s.present[p][line])
                out.cls = mem::MissClass::TagReset;
            else
                out.cls = classifyAbsent(s.hist[p][line]);
            out.sends = true;
            fillLine(cfg, s, p, line, w); // refill in place if resident
        }
        s.readers[w] |= bit(p);
        break;
      }

      case MarkKind::Bypass: {
        // Bypass fetches the word uncached; the line (if any) keeps its
        // timetag but refreshes the copied value.
        out.sends = true;
        if (resident)
            out.cls = c.stale ? mem::MissClass::TrueShare
                              : mem::MissClass::Conservative;
        else
            out.cls = classifyAbsent(s.hist[p][line]);
        if (s.present[p][line])
            c.stale = false;
        s.bypasses[w] |= bit(p);
        break;
      }
    }

    applyDrop(s, a);
    --s.opsLeft[p];
}

void
doBarrier(const McConfig &cfg, State &s, const Action &a)
{
    const unsigned newEpoch = s.epoch + 1u;

    // Crossing the boundary ages every retained tag by one epoch.
    for (unsigned p = 0; p < cfg.procs; ++p) {
        for (unsigned l = 0; l < cfg.lines(); ++l) {
            if (!s.present[p][l])
                continue;
            for (unsigned j = 0; j < cfg.lineWords; ++j) {
                Copy &c = s.copy[p][l * cfg.lineWords + j];
                c.age = satAge(int(c.age) + 1);
            }
        }
        for (unsigned w = 0; w < cfg.words; ++w) {
            std::int8_t &lw = s.lastWriteAge[p][w];
            if (lw == kNoWrite)
                continue;
            // Beyond dmax the write no longer constrains any legal
            // Time-Read distance: merge with "never wrote".
            lw = lw >= std::int8_t(cfg.dmax()) ? kNoWrite
                                               : std::int8_t(lw + 1);
        }
    }

    // mem.epoch resync (flash invalidate) precedes the reset sweep,
    // matching TpiScheme::epochBoundary().
    if (a.fault == Action::Fault::EpochFlip) {
        flushCache(cfg, s, a.flushProc);
        --s.faultsLeft;
    }

    // Two-phase reset: invalidate words whose tag is a full phase old.
    if (newEpoch % cfg.phase() == 0 && newEpoch >= cfg.phase()) {
        for (unsigned p = 0; p < cfg.procs; ++p) {
            for (unsigned l = 0; l < cfg.lines(); ++l) {
                if (!s.present[p][l])
                    continue;
                bool anyValid = false;
                for (unsigned j = 0; j < cfg.lineWords; ++j) {
                    Copy &c = s.copy[p][l * cfg.lineWords + j];
                    // tt < newEpoch - phase  <=>  age > phase
                    if (c.valid && int(c.age) > int(cfg.phase()))
                        c.valid = false;
                    anyValid |= c.valid;
                }
                if (!anyValid) {
                    s.present[p][l] = false;
                    s.hist[p][l] = LineHist::InvTag;
                    for (unsigned j = 0; j < cfg.lineWords; ++j)
                        s.copy[p][l * cfg.lineWords + j] = Copy{};
                }
            }
        }
    }

    s.epoch = std::uint8_t(newEpoch);
    for (unsigned w = 0; w < cfg.words; ++w) {
        s.writers[w] = 0;
        s.readers[w] = 0;
        s.bypasses[w] = 0;
        s.criticals[w] = 0;
    }
    for (unsigned p = 0; p < cfg.procs; ++p)
        s.opsLeft[p] = std::uint8_t(cfg.opsPerEpoch);
}

} // namespace

void
apply(const McConfig &cfg, State &s, const Action &a, Outcome &out)
{
    switch (a.kind) {
      case Action::Kind::Finish:
        s.opsLeft[a.proc] = 0;
        return;
      case Action::Kind::Write:
        doWrite(cfg, s, a, out);
        return;
      case Action::Kind::Read:
        doRead(cfg, s, a, out);
        return;
      case Action::Kind::Barrier:
        doBarrier(cfg, s, a);
        return;
    }
}

namespace {

/** Would this read hit, evaluated on the un-faulted pre-state? */
bool
wouldHit(const McConfig &cfg, const State &s, unsigned p, unsigned w,
         MarkKind mark, unsigned d)
{
    const Copy &c = s.copy[p][w];
    const bool resident = s.present[p][w / cfg.lineWords] && c.valid;
    if (mark == MarkKind::Normal)
        return resident;
    if (mark == MarkKind::TimeRead)
        return resident &&
               int(c.age) <= std::min<int>(d, int(cfg.dmax()));
    return false; // Bypass always fetches
}

/** Emit @p base plus its enabled fault-attachment variants. */
void
withFaults(const McConfig &cfg, const State &s, Action base,
           std::vector<Action> &out)
{
    out.push_back(base);
    if (s.faultsLeft == 0)
        return;

    const unsigned p = base.proc;
    const bool sends =
        base.kind == Action::Kind::Write ||
        (base.kind == Action::Kind::Read &&
         !wouldHit(cfg, s, p, base.word, base.mark, base.distance));

    if (base.kind == Action::Kind::Read &&
        cfg.siteEnabled(fault::Site::MemTagFlip) &&
        s.present[p][base.word / cfg.lineWords])
    {
        // One stored-bit flip in the accessed line: each word's n tag
        // bits plus its valid bit.
        for (unsigned j = 0; j < cfg.lineWords; ++j) {
            for (unsigned b = 0; b <= cfg.timetagBits; ++b) {
                Action a = base;
                a.fault = Action::Fault::TagFlip;
                a.faultWord = std::uint8_t(j);
                a.faultBit = std::uint8_t(b);
                out.push_back(a);
            }
        }
    }

    if (sends && cfg.siteEnabled(fault::Site::NetDrop)) {
        Action a = base;
        a.fault = Action::Fault::DropRecover;
        out.push_back(a);
        a.fault = Action::Fault::DropAbort;
        out.push_back(a);
    }
}

} // namespace

void
enumerate(const McConfig &cfg, const State &s, std::vector<Action> &out)
{
    out.clear();
    if (isTerminal(cfg, s))
        return;

    bool allDone = true;
    for (unsigned p = 0; p < cfg.procs; ++p) {
        if (s.opsLeft[p] == 0)
            continue;
        allDone = false;

        Action fin;
        fin.kind = Action::Kind::Finish;
        fin.proc = std::uint8_t(p);
        out.push_back(fin);

        for (unsigned w = 0; w < cfg.words; ++w) {
            const std::uint8_t others = std::uint8_t(~bit(p));
            const bool noOtherWriter = (s.writers[w] & others) == 0;
            const bool noCrit = s.criticals[w] == 0;
            const Copy &c = s.copy[p][w];
            const bool resident =
                s.present[p][w / cfg.lineWords] && c.valid;

            Action base;
            base.proc = std::uint8_t(p);
            base.word = std::uint8_t(w);

            // Non-critical write: this epoch's sole toucher (DOALL
            // ownership).
            if (noCrit &&
                ((s.writers[w] | s.readers[w] | s.bypasses[w]) & others)
                    == 0)
            {
                Action a = base;
                a.kind = Action::Kind::Write;
                withFaults(cfg, s, a, out);
            }
            // Critical write: lock-serialized; legal alongside other
            // critical writers and Bypass readers only.
            if (cfg.allowCritical && s.writers[w] == 0 &&
                s.readers[w] == 0)
            {
                Action a = base;
                a.kind = Action::Kind::Write;
                a.critical = true;
                withFaults(cfg, s, a, out);
            }
            // Normal read: compiler proved freshness — no conflicting
            // writer this epoch, and any retained copy is fresh (or its
            // staleness is purely fault-induced).
            if (noCrit && noOtherWriter &&
                (!resident || !c.stale || c.tainted))
            {
                Action a = base;
                a.kind = Action::Kind::Read;
                a.mark = MarkKind::Normal;
                withFaults(cfg, s, a, out);
            }
            // Time-Read with every sound marking distance: d may not
            // reach past the youngest other-processor write.
            if (noCrit && noOtherWriter) {
                int dtrue = int(kNoWrite);
                for (unsigned q = 0; q < cfg.procs; ++q) {
                    if (q != p)
                        dtrue = std::min<int>(dtrue,
                                              s.lastWriteAge[q][w]);
                }
                const int dlim = std::min<int>(
                    {dtrue, int(s.epoch), int(cfg.dmax())});
                for (int d = 0; d <= dlim; ++d) {
                    Action a = base;
                    a.kind = Action::Kind::Read;
                    a.mark = MarkKind::TimeRead;
                    a.distance = std::uint8_t(d);
                    withFaults(cfg, s, a, out);
                }
            }
            // Bypass read: legal even against critical writers.
            if (noOtherWriter) {
                Action a = base;
                a.kind = Action::Kind::Read;
                a.mark = MarkKind::Bypass;
                withFaults(cfg, s, a, out);
            }
        }
    }

    if (allDone) {
        Action bar;
        bar.kind = Action::Kind::Barrier;
        out.push_back(bar);
        if (s.faultsLeft > 0 &&
            cfg.siteEnabled(fault::Site::MemEpochFlip))
        {
            for (unsigned q = 0; q < cfg.procs; ++q) {
                Action a = bar;
                a.fault = Action::Fault::EpochFlip;
                a.flushProc = std::uint8_t(q);
                out.push_back(a);
            }
        }
    }
}

std::string
canonicalKey(const McConfig &cfg, const State &s, bool symmetry)
{
    const unsigned P = cfg.procs;
    std::array<std::uint8_t, kMaxProcs> perm;
    for (unsigned i = 0; i < P; ++i)
        perm[i] = std::uint8_t(i);

    std::string best;
    std::string cur;
    cur.reserve(8 + P * (2 + 3 * cfg.words + cfg.lines()) + 4 * cfg.words);
    do {
        cur.clear();
        cur.push_back(char(s.epoch));
        cur.push_back(char(s.aborted));
        cur.push_back(char(s.faultsLeft));
        for (unsigned i = 0; i < P; ++i) {
            const unsigned p = perm[i];
            cur.push_back(char(s.opsLeft[p]));
            for (unsigned w = 0; w < cfg.words; ++w) {
                const Copy &c = s.copy[p][w];
                // Once the fault budget is spent an invalid word can
                // never be resurrected: its retained tag/value bits are
                // unreachable and fold into one canonical form.
                if (!c.valid && s.faultsLeft == 0 &&
                    s.present[p][w / cfg.lineWords])
                {
                    cur.push_back(0);
                    cur.push_back(0);
                    continue;
                }
                cur.push_back(char(c.valid | (c.tainted << 1) |
                                   (c.stale << 2) | (c.faulted << 3)));
                cur.push_back(char(c.age));
            }
            for (unsigned l = 0; l < cfg.lines(); ++l)
                cur.push_back(char(s.present[p][l] |
                                   (unsigned(s.hist[p][l]) << 1)));
            for (unsigned w = 0; w < cfg.words; ++w)
                cur.push_back(char(s.lastWriteAge[p][w]));
        }
        for (unsigned w = 0; w < cfg.words; ++w) {
            std::uint8_t m[4] = {};
            for (unsigned i = 0; i < P; ++i) {
                const unsigned p = perm[i];
                m[0] |= std::uint8_t(((s.writers[w] >> p) & 1) << i);
                m[1] |= std::uint8_t(((s.readers[w] >> p) & 1) << i);
                m[2] |= std::uint8_t(((s.bypasses[w] >> p) & 1) << i);
                m[3] |= std::uint8_t(((s.criticals[w] >> p) & 1) << i);
            }
            for (std::uint8_t v : m)
                cur.push_back(char(v));
        }
        if (best.empty() || cur < best)
            best = cur;
        if (!symmetry)
            break;
    } while (std::next_permutation(perm.begin(), perm.begin() + P));
    return best;
}

std::string
Action::str() const
{
    switch (kind) {
      case Kind::Finish:
        return csprintf("p%d finish", int(proc));
      case Kind::Barrier: {
        std::string s = "barrier";
        if (fault == Fault::EpochFlip)
            s += csprintf(" [mem.epoch: flush p%d]", int(flushProc));
        return s;
      }
      case Kind::Write: {
        std::string s = csprintf("p%d write%s w%d", int(proc),
                                 critical ? "(crit)" : "", int(word));
        if (fault == Fault::DropRecover)
            s += " [net.drop: recovered]";
        else if (fault == Fault::DropAbort)
            s += " [net.drop: abort]";
        return s;
      }
      case Kind::Read: {
        const char *m = mark == compiler::MarkKind::Normal ? "read"
                        : mark == compiler::MarkKind::TimeRead
                            ? "time-read"
                            : "bypass-read";
        std::string s = csprintf("p%d %s w%d", int(proc), m, int(word));
        if (mark == compiler::MarkKind::TimeRead)
            s += csprintf(" d=%d", int(distance));
        if (fault == Fault::TagFlip)
            s += csprintf(" [mem.tag: word %d bit %d]", int(faultWord),
                          int(faultBit));
        else if (fault == Fault::DropRecover)
            s += " [net.drop: recovered]";
        else if (fault == Fault::DropAbort)
            s += " [net.drop: abort]";
        return s;
      }
    }
    return "?";
}

std::uint32_t
Action::encode() const
{
    return std::uint32_t(kind) | (std::uint32_t(proc) << 2) |
           (std::uint32_t(word) << 4) | (std::uint32_t(mark) << 7) |
           (std::uint32_t(distance) << 9) |
           (std::uint32_t(critical) << 13) |
           (std::uint32_t(fault) << 14) |
           (std::uint32_t(faultWord) << 17) |
           (std::uint32_t(faultBit) << 20) |
           (std::uint32_t(flushProc) << 23);
}

Action
Action::decode(std::uint32_t b)
{
    Action a;
    a.kind = Kind(b & 3);
    a.proc = std::uint8_t((b >> 2) & 3);
    a.word = std::uint8_t((b >> 4) & 7);
    a.mark = compiler::MarkKind((b >> 7) & 3);
    a.distance = std::uint8_t((b >> 9) & 15);
    a.critical = ((b >> 13) & 1) != 0;
    a.fault = Fault((b >> 14) & 7);
    a.faultWord = std::uint8_t((b >> 17) & 7);
    a.faultBit = std::uint8_t((b >> 20) & 7);
    a.flushProc = std::uint8_t((b >> 23) & 3);
    return a;
}

} // namespace mc
} // namespace hscd
