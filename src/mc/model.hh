/**
 * @file
 * Guarded-action model of the TPI coherence protocol for exhaustive
 * exploration (ROADMAP item 5, following the guarded-action modelling of
 * cache protocols in PAPERS.md).
 *
 * The model is a small-step transition system over one abstract machine:
 * P processors, W shared words grouped into cache lines of `lineWords`,
 * an n-bit timetag lattice with the two-phase reset schedule, and the
 * PR 4 fault surface (mem.tag flips, mem.epoch flush recovery, net.drop
 * retry/abort). Each enabled action is a *guarded action*: the guard
 * encodes the compiler/environment contract (epoch conflict-freedom,
 * sound Time-Read distances, Normal reads only where freshness is
 * provable), and the effect mirrors `mem/tpi_scheme.cc` word for word —
 * fills stamp the accessed word with EC and side words with EC-1 (or
 * leave them invalid in epoch 0), non-critical writes vouch EC, critical
 * writes vouch EC-1, Time-Read hits promote, and the two-phase reset
 * invalidates words older than one phase at each phase boundary.
 *
 * State is deliberately value-abstracted: instead of absolute value
 * stamps the model keeps one `stale` bit per cached copy (is the copy's
 * value the word's current memory value?), and instead of absolute
 * timetags it keeps the tag *age* `EC - tt`. Both abstractions are
 * exact for the invariants checked and collapse runs that differ only
 * by renaming, which is what makes exhaustive enumeration feasible.
 *
 * Invariants (checked on every read transition):
 *  - NoStaleRead:   a read hit never returns a stale value, unless the
 *                   copy was tainted by an injected tag-raising fault
 *                   (exactly the corruptions PR 2's oracles must flag).
 *  - BoundedTagAge: every valid untainted copy consulted by a Time-Read
 *                   has age in [0, 2^n - 1] — the two-phase reset keeps
 *                   modular n-bit tag arithmetic unambiguous.
 *  - ModularAgree:  the n-bit hardware hit decision ((EC - tt) mod 2^n
 *                   <= d) agrees with the unbounded-tag decision the
 *                   implementation computes — the wraparound property.
 *  - Deadlock-freedom / liveness bound: every non-terminal state has an
 *                   enabled action, and (by bounded exhaustion) every
 *                   request completes or structurally aborts.
 */

#ifndef HSCD_MC_MODEL_HH
#define HSCD_MC_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/marking.hh"
#include "fault/plan.hh"
#include "mem/coherence.hh"

namespace hscd {
namespace mc {

/** Model size bounds (state arrays are statically sized). */
constexpr unsigned kMaxProcs = 3;
constexpr unsigned kMaxWords = 4;
constexpr unsigned kMaxLines = 4;

/** Model configuration: one exhaustively-explored machine shape. */
struct McConfig
{
    unsigned procs = 2;          ///< processors (2..kMaxProcs)
    unsigned words = 2;          ///< shared words (1..kMaxWords)
    unsigned lineWords = 2;      ///< words per cache line (divides words)
    unsigned timetagBits = 1;    ///< n; phase = 2^(n-1), dmax = 2^n - 1
    unsigned horizonEpochs = 0;  ///< explored epochs; 0 = 2 * 2^n + 1
    unsigned opsPerEpoch = 2;    ///< max references per processor/epoch
    unsigned faultBudget = 0;    ///< injected faults per run (0 = none)
    unsigned faultSites = fault::kSitesAll; ///< which Site classes fire
    bool allowCritical = true;   ///< explore critical-section writes
    bool promote = true;         ///< MachineConfig::tpiPromoteOnHit
    unsigned maxRetries = 4;     ///< MachineConfig::faultMaxRetries

    unsigned phase() const { return 1u << (timetagBits - 1); }
    unsigned dmax() const { return (1u << timetagBits) - 1; }
    unsigned
    horizon() const
    {
        return horizonEpochs ? horizonEpochs
                             : 2u * (1u << timetagBits) + 1;
    }
    unsigned lines() const { return words / lineWords; }

    bool
    siteEnabled(fault::Site s) const
    {
        return faultBudget > 0 &&
               (faultSites & fault::siteBit(s)) != 0;
    }

    /** Validate bounds; fatal() on a malformed configuration. */
    void validate() const;

    std::string str() const;
};

/** One cached copy of one word in one processor's cache. */
struct Copy
{
    bool valid = false;
    /** An injected fault raised the tag or set the valid bit: the copy
     *  may wrongly vouch, and the no-stale-read invariant is waived
     *  (the soundness oracles, not the tag lattice, own this case). */
    bool tainted = false;
    /** Any injected flip touched this word's tag state (superset of
     *  tainted: includes benign lowered tags / cleared valid bits).
     *  The wraparound invariants only claim unfaulted tags: a lowered
     *  tag legally ages past dmax and simply misses conservatively. */
    bool faulted = false;
    /** Copy's value differs from the word's current memory value. */
    bool stale = false;
    /** Tag age EC - tt. Negative = a fault pushed the tag into the
     *  future. Saturates at +/- kAgeCap. */
    std::int8_t age = 0;

    bool operator==(const Copy &) const = default;
};

constexpr std::int8_t kAgeCap = 64;

/** LineHistory abstraction (mem/line_history.hh) per (proc, line). */
enum class LineHist : std::uint8_t
{
    Never,   ///< never cached -> Cold miss
    Cached,  ///< resident (or was; TPI never evicts in this geometry)
    InvTag,  ///< lost to a two-phase reset / flush -> TagReset miss
};

/**
 * One explored machine state. Kept concrete enough to re-execute
 * transitions; canonicalKey() performs the abstraction/symmetry
 * reduction used for deduplication.
 */
struct State
{
    std::uint8_t epoch = 0;
    bool aborted = false;
    std::uint8_t faultsLeft = 0;
    std::uint8_t opsLeft[kMaxProcs] = {};
    Copy copy[kMaxProcs][kMaxWords];
    bool present[kMaxProcs][kMaxLines] = {};
    LineHist hist[kMaxProcs][kMaxLines] = {};
    /** Age of proc p's last write to word w; kNoWrite = none/ancient. */
    std::int8_t lastWriteAge[kMaxProcs][kMaxWords];
    /** Per-epoch conflict footprints (processor bit masks). */
    std::uint8_t writers[kMaxWords] = {};
    std::uint8_t readers[kMaxWords] = {};
    std::uint8_t bypasses[kMaxWords] = {};
    std::uint8_t criticals[kMaxWords] = {};

    bool operator==(const State &) const = default;
};

constexpr std::int8_t kNoWrite = 127;

/** Build the initial state (cold caches, epoch 0). */
State initialState(const McConfig &cfg);

/** Is @p s terminal (completed horizon or structurally aborted)? */
bool isTerminal(const McConfig &cfg, const State &s);

/**
 * Canonical dedup key: value-abstracted state bytes, minimized over all
 * processor permutations when @p symmetry is set (TPI treats processors
 * uniformly, so states equal up to renaming have isomorphic futures).
 */
std::string canonicalKey(const McConfig &cfg, const State &s,
                         bool symmetry);

/** One guarded action. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        Finish,   ///< processor issues no further references this epoch
        Write,    ///< write word (critical() => lock-ordered)
        Read,     ///< read word with mark()/distance()
        Barrier,  ///< all processors cross the epoch boundary
    };

    /** Fault attachment riding on the action (one per action). */
    enum class Fault : std::uint8_t
    {
        None,
        TagFlip,      ///< mem.tag on the accessed line (reads only)
        DropRecover,  ///< net.drop absorbed by one retransmission
        DropAbort,    ///< net.drop exhausts retries -> Protocol abort
        EpochFlip,    ///< mem.epoch at the barrier -> flush a processor
    };

    Kind kind = Kind::Finish;
    std::uint8_t proc = 0;
    std::uint8_t word = 0;
    compiler::MarkKind mark = compiler::MarkKind::Normal;
    std::uint8_t distance = 0;
    bool critical = false;
    Fault fault = Fault::None;
    std::uint8_t faultWord = 0;  ///< TagFlip: word index within the line
    std::uint8_t faultBit = 0;   ///< TagFlip: tag bit, or n = valid bit
    std::uint8_t flushProc = 0;  ///< EpochFlip: flushed processor

    std::string str() const;

    /** Compact encoding for parent-edge storage. */
    std::uint32_t encode() const;
    static Action decode(std::uint32_t bits);

    bool operator==(const Action &) const = default;
};

/** Which invariant a counterexample violates. */
enum class InvariantId : std::uint8_t
{
    None,
    NoStaleRead,
    BoundedTagAge,
    ModularAgree,
    Deadlock,
};

const char *invariantName(InvariantId id);

/** What one applied action did (drives invariants and trace replay). */
struct Outcome
{
    bool isRead = false;
    bool hit = false;
    mem::MissClass cls = mem::MissClass::None;
    /** The returned value was stale (hit on a stale copy). */
    bool observedStale = false;
    /** The reference sent a protocol message (miss fill / bypass fetch /
     *  write-through), i.e. one net.drop opportunity. */
    bool sends = false;
    /** The read found the line resident (one mem.tag opportunity). */
    bool lineWasPresent = false;
    /** Invariant violated by this transition (None if clean). */
    InvariantId violated = InvariantId::None;
    std::string violation;
};

/**
 * Apply @p a to @p s (in place), filling @p out. The caller guarantees
 * the action came from enumerate() on the same state.
 */
void apply(const McConfig &cfg, State &s, const Action &a, Outcome &out);

/**
 * Enumerate every enabled guarded action of @p s in a deterministic
 * order. Returns nothing for terminal states.
 */
void enumerate(const McConfig &cfg, const State &s,
               std::vector<Action> &out);

} // namespace mc
} // namespace hscd

#endif // HSCD_MC_MODEL_HH
