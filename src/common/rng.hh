/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible across platforms, so we avoid
 * std::mt19937 distribution implementations (which are not specified
 * exactly for all distributions) and use a small PCG32 generator with
 * hand-rolled bounded sampling.
 */

#ifndef HSCD_COMMON_RNG_HH
#define HSCD_COMMON_RNG_HH

#include <cstdint>

namespace hscd {

/** SplitMix64: used to seed/expand user seeds. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * PCG32 (O'Neill): small, fast, statistically solid, reproducible.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        std::uint64_t s = seed;
        _state = splitmix64(s);
        _inc = (splitmix64(s) ^ stream) | 1ULL;
        next32();
    }

    /** Next raw 32 random bits. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = _state;
        _state = old * 6364136223846793005ULL + _inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Next raw 64 random bits. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform integer in [0, bound), bias-free (Lemire rejection). */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint64_t m = std::uint64_t{next32()} * bound;
        std::uint32_t l = static_cast<std::uint32_t>(m);
        if (l < bound) {
            std::uint32_t t = -bound % bound;
            while (l < t) {
                m = std::uint64_t{next32()} * bound;
                l = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint32_t>(hi - lo + 1)));
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return (next64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t _state;
    std::uint64_t _inc;
};

} // namespace hscd

#endif // HSCD_COMMON_RNG_HH
