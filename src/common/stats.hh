/**
 * @file
 * Lightweight statistics package.
 *
 * Counters register themselves with a StatGroup; groups nest and dump as an
 * indented listing. Only the stat kinds the simulator needs are provided:
 * scalar counters, averages, histograms, and derived formulas evaluated at
 * dump time.
 */

#ifndef HSCD_COMMON_STATS_HH
#define HSCD_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hscd {
namespace stats {

class StatGroup;

/** Base class for every statistic. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render the current value. */
    virtual std::string render() const = 0;
    /** Zero the statistic. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Simple monotone counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }
    void set(std::uint64_t v) { _value = v; }

    std::uint64_t value() const { return _value; }
    std::string render() const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }

    std::string render() const override;
    void reset() override { _sum = 0; _count = 0; }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/** Fixed-bucket histogram over [0, max) with @p buckets bins + overflow. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc,
              double max, unsigned buckets);

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    const std::vector<std::uint64_t> &bins() const { return _bins; }
    std::uint64_t overflow() const { return _overflow; }

    /**
     * Value at quantile @p q in [0, 1], reconstructed from the bins
     * (each bin's mass sits at its upper edge, so the estimate is
     * conservative; overflow mass reports as max). Defined for every
     * input: an empty histogram returns 0.0 for all q, and out-of-range
     * or non-finite q clamp into [0, 1].
     */
    double percentile(double q) const;

    std::string render() const override;
    void reset() override;

  private:
    double _max;
    std::vector<std::uint64_t> _bins;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0;
};

/** Value computed on demand from other stats. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return _fn(); }
    std::string render() const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * A named collection of statistics; groups form a tree rooted anywhere the
 * caller likes (typically the Machine).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup() = default;

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /**
     * Recursively print "path.stat = value # desc" lines. Stats and
     * child groups print in name order, not registration order, so the
     * listing is deterministic however construction interleaves (e.g.
     * machines built concurrently by a --jobs sweep) and diffable
     * across snapshots.
     */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Recursively reset all stats. */
    void resetAll();

    /** Find a directly-owned stat by name (nullptr if absent). */
    const StatBase *find(const std::string &name) const;

    /** Find a stat by dotted path relative to this group. */
    const StatBase *lookup(const std::string &path) const;

  private:
    friend class StatBase;

    void addStat(StatBase *stat);
    void addChild(StatGroup *child);

    std::string _name;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace stats
} // namespace hscd

#endif // HSCD_COMMON_STATS_HH
