/**
 * @file
 * String formatting and parsing helpers.
 *
 * csprintf() is a type-safe printf-alike built on iostreams, in the spirit
 * of gem5's base/cprintf; only the conversions the simulator needs are
 * supported (%d %u %s %f %g %x %c %%, with width/precision/fill).
 */

#ifndef HSCD_COMMON_STRUTIL_HH
#define HSCD_COMMON_STRUTIL_HH

#include <sstream>
#include <string>
#include <vector>

namespace hscd {

namespace detail {

/** Apply one % conversion spec (already located) to the stream. */
void applyFormat(std::ostream &os, const std::string &fmt, std::size_t &pos);

inline void
csprintfRec(std::ostream &os, const std::string &fmt, std::size_t pos)
{
    // No arguments left: emit the remainder, turning %% into %.
    while (pos < fmt.size()) {
        if (fmt[pos] == '%' && pos + 1 < fmt.size() && fmt[pos + 1] == '%') {
            os << '%';
            pos += 2;
        } else {
            os << fmt[pos++];
        }
    }
}

template <typename T, typename... Args>
void
csprintfRec(std::ostream &os, const std::string &fmt, std::size_t pos,
            const T &val, const Args &...rest)
{
    while (pos < fmt.size()) {
        if (fmt[pos] != '%') {
            os << fmt[pos++];
            continue;
        }
        if (pos + 1 < fmt.size() && fmt[pos + 1] == '%') {
            os << '%';
            pos += 2;
            continue;
        }
        applyFormat(os, fmt, pos);
        os << val;
        // Restore default stream state for subsequent conversions.
        os.copyfmt(std::ios(nullptr));
        csprintfRec(os, fmt, pos, rest...);
        return;
    }
}

} // namespace detail

/** Type-safe printf returning a std::string. */
template <typename... Args>
std::string
csprintf(const std::string &fmt, const Args &...args)
{
    std::ostringstream os;
    detail::csprintfRec(os, fmt, 0, args...);
    return os.str();
}

/** Split @p s on @p sep, dropping empty fields if @p keep_empty is false. */
std::vector<std::string> split(const std::string &s, char sep,
                               bool keep_empty = false);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/** Render a count with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string withCommas(std::uint64_t v);

/** Parse a boolean ("1/0/true/false/yes/no/on/off"); throws on junk. */
bool parseBool(const std::string &s);

} // namespace hscd

#endif // HSCD_COMMON_STRUTIL_HH
