/**
 * @file
 * Status / error reporting in the gem5 style.
 *
 * fatal() is for user errors (bad configuration) and throws FatalError so
 * tests can assert on it; panic() is for internal invariant violations and
 * aborts in release binaries but also throws PanicError when
 * Log::throwOnPanic is set (the default under the test harness).
 */

#ifndef HSCD_COMMON_LOG_HH
#define HSCD_COMMON_LOG_HH

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/strutil.hh"

namespace hscd {

/** Exception carrying a fatal (user-caused) error. */
struct FatalError : std::runtime_error
{
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception carrying a panic (internal bug) error. */
struct PanicError : std::logic_error
{
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Global logging knobs. */
class Log
{
  public:
    /** Verbosity: 0 quiet, 1 inform, 2 debug. */
    static int level;
    /** Throw PanicError instead of aborting (set by tests). */
    static bool throwOnPanic;

    /** Thread-safe: whole lines, never interleaved mid-message. */
    static void emit(const char *tag, const std::string &msg);
};

/** Informative message (level >= 1). */
template <typename... Args>
void
inform(const std::string &fmt, const Args &...args)
{
    if (Log::level >= 1)
        Log::emit("info", csprintf(fmt, args...));
}

/** Debug chatter (level >= 2). */
template <typename... Args>
void
debugf(const std::string &fmt, const Args &...args)
{
    if (Log::level >= 2)
        Log::emit("debug", csprintf(fmt, args...));
}

/** Something works but deserves suspicion. */
template <typename... Args>
void
warn(const std::string &fmt, const Args &...args)
{
    Log::emit("warn", csprintf(fmt, args...));
}

/** User error: the run cannot continue. */
template <typename... Args>
[[noreturn]] void
fatal(const std::string &fmt, const Args &...args)
{
    const std::string msg = csprintf(fmt, args...);
    Log::emit("fatal", msg);
    throw FatalError(msg);
}

/** Internal bug: this should never happen. */
template <typename... Args>
[[noreturn]] void
panic(const std::string &fmt, const Args &...args)
{
    const std::string msg = csprintf(fmt, args...);
    Log::emit("panic", msg);
    if (Log::throwOnPanic)
        throw PanicError(msg);
    std::abort();
}

/** assert-with-message that survives NDEBUG builds. */
#define hscd_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::hscd::panic("assertion failed: %s: %s", #cond,                 \
                          ::hscd::csprintf(__VA_ARGS__));                    \
    } while (0)

/**
 * Debug-only assert for per-reference hot loops (memory/cache word
 * indexing). Release builds must not pay a bounds check per simulated
 * reference, so this compiles away under NDEBUG; debug and sanitizer
 * builds keep the full check.
 */
#ifdef NDEBUG
#define hscd_dassert(cond, ...)                                              \
    do {                                                                     \
    } while (0)
#else
#define hscd_dassert(cond, ...) hscd_assert(cond, __VA_ARGS__)
#endif

} // namespace hscd

#endif // HSCD_COMMON_LOG_HH
