#include "common/config.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {

Params &
Params::define(const std::string &key, const std::string &def,
               const std::string &desc)
{
    auto [it, inserted] = _entries.emplace(key, Entry{def, desc});
    if (!inserted)
        fatal("parameter '%s' defined twice", key);
    (void)it;
    _order.push_back(key);
    return *this;
}

void
Params::set(const std::string &key, const std::string &value)
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        fatal("unknown parameter '%s'", key);
    it->second.value = value;
}

void
Params::parseAssignment(const std::string &kv)
{
    auto eq = kv.find('=');
    if (eq == std::string::npos)
        fatal("expected key=value, got '%s'", kv);
    set(trim(kv.substr(0, eq)), trim(kv.substr(eq + 1)));
}

void
Params::parseArgs(const std::vector<std::string> &args)
{
    for (const std::string &a : args)
        parseAssignment(a);
}

bool
Params::has(const std::string &key) const
{
    return _entries.count(key) != 0;
}

const Params::Entry &
Params::entry(const std::string &key) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        fatal("unknown parameter '%s'", key);
    return it->second;
}

std::string
Params::getString(const std::string &key) const
{
    return entry(key).value;
}

std::int64_t
Params::getInt(const std::string &key) const
{
    const std::string &v = entry(key).value;
    char *end = nullptr;
    std::int64_t out = std::strtoll(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        fatal("parameter '%s': '%s' is not an integer", key, v);
    return out;
}

std::uint64_t
Params::getUint(const std::string &key) const
{
    std::int64_t v = getInt(key);
    if (v < 0)
        fatal("parameter '%s' must be non-negative, got %d", key, v);
    return static_cast<std::uint64_t>(v);
}

double
Params::getDouble(const std::string &key) const
{
    const std::string &v = entry(key).value;
    char *end = nullptr;
    double out = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("parameter '%s': '%s' is not a number", key, v);
    return out;
}

bool
Params::getBool(const std::string &key) const
{
    return parseBool(entry(key).value);
}

std::string
Params::describe(const std::string &key) const
{
    const Entry &e = entry(key);
    return csprintf("%s=%s  # %s", key, e.value, e.desc);
}

} // namespace hscd
