#include "common/log.hh"

#include <cstdio>
#include <mutex>

namespace hscd {

int Log::level = 1;
bool Log::throwOnPanic = true;

namespace {
// Parallel sweeps log from worker threads; serialize the sink so lines
// never interleave mid-message.
std::mutex emitMutex;
} // namespace

void
Log::emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lk(emitMutex);
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace hscd
