#include "common/log.hh"

#include <cstdio>

namespace hscd {

int Log::level = 1;
bool Log::throwOnPanic = true;

void
Log::emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace hscd
