#include "common/parallel.hh"

namespace hscd {

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned jobs) : _jobs(jobs ? jobs : hardwareJobs())
{
    _workers.reserve(_jobs);
    for (unsigned i = 0; i < _jobs; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(_mtx);
        _stopping = true;
    }
    _workReady.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(_mtx);
        // _pending counts the task from submission until completion, so
        // wait() cannot slip through the window where a nested child has
        // been queued but its parent already finished.
        ++_pending;
        _queue.push_back(std::move(task));
    }
    _workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(_mtx);
    _allDone.wait(lk, [this] { return _pending == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(_mtx);
            _workReady.wait(
                lk, [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(_mtx);
            if (--_pending == 0)
                _allDone.notify_all();
        }
    }
}

} // namespace hscd
