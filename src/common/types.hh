/**
 * @file
 * Fundamental scalar types shared by every hscd subsystem.
 */

#ifndef HSCD_COMMON_TYPES_HH
#define HSCD_COMMON_TYPES_HH

#include <cstdint>

namespace hscd {

/** Byte address in the simulated shared address space. */
using Addr = std::uint64_t;

/** Simulated processor cycle count. */
using Cycles = std::uint64_t;

/** Signed cycle delta, used by latency arithmetic. */
using CycleDelta = std::int64_t;

/** Monotone epoch number as tracked by the simulator (unbounded). */
using EpochId = std::uint64_t;

/** Processor identifier, 0 .. P-1. */
using ProcId = std::uint32_t;

/** Saturating-free 64-bit event counter. */
using Counter = std::uint64_t;

/** Identifier of an invalid / absent processor. */
constexpr ProcId invalidProc = static_cast<ProcId>(-1);

} // namespace hscd

#endif // HSCD_COMMON_TYPES_HH
