/**
 * @file
 * Thread-pool parallelism for embarrassingly parallel sweeps.
 *
 * The simulator itself is single-threaded and deterministic; what the
 * experiment harness needs is to run many independent simulations at
 * once and still produce output that is bit-identical to a serial run.
 * The primitives here guarantee exactly that:
 *
 *  - ThreadPool: a fixed set of workers draining a FIFO task queue.
 *    Tasks may submit further tasks (nested submission); wait() blocks
 *    until the pool is fully drained, including such children.
 *  - parallelMap(jobs, n, fn): evaluate fn(0..n-1) and return the
 *    results **in index order** regardless of completion order or
 *    thread count. With jobs == 1 the calls run inline on the caller,
 *    reproducing serial behavior bit-for-bit (no threads are created).
 *    If any invocation throws, the exception from the **lowest index**
 *    is rethrown after all tasks finish - again matching what a serial
 *    loop would have reported first.
 */

#ifndef HSCD_COMMON_PARALLEL_HH
#define HSCD_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hscd {

/** Number of hardware threads (always >= 1). */
unsigned hardwareJobs();

/**
 * Fixed-size worker pool over a FIFO queue. Construction spawns the
 * workers; destruction waits for the queue to drain and joins them.
 */
class ThreadPool
{
  public:
    /** @p jobs == 0 selects hardwareJobs(). */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned jobs() const { return _jobs; }

    /**
     * Enqueue @p task. Safe from any thread, including pool workers
     * (nested submission). The task must not throw; wrap fallible work
     * and capture its std::exception_ptr (parallelMap does this).
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task - including tasks submitted by
     * running tasks - has completed.
     */
    void wait();

  private:
    void workerLoop();

    unsigned _jobs;
    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _queue;
    std::mutex _mtx;
    std::condition_variable _workReady; ///< queue non-empty or stopping
    std::condition_variable _allDone;   ///< pending dropped to zero
    std::size_t _pending = 0;           ///< queued + running tasks
    bool _stopping = false;
};

/**
 * Run fn(0), ..., fn(n-1) on @p jobs threads and return the results in
 * index order (deterministic aggregation). See the file comment for the
 * serial-equivalence and exception contract. @p jobs == 0 selects
 * hardwareJobs(); the result type must be default-constructible.
 */
template <typename Fn>
auto
parallelMap(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> results(n);
    if (jobs == 0)
        jobs = hardwareJobs();
    if (jobs <= 1 || n <= 1) {
        // Inline serial path: same thread, same order, exceptions
        // propagate exactly as a plain loop would.
        for (std::size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }

    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    results[i] = fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    return results;
}

/** parallelMap for side-effecting loops (no result vector). */
template <typename Fn>
void
parallelFor(unsigned jobs, std::size_t n, Fn &&fn)
{
    parallelMap(jobs, n, [&](std::size_t i) {
        fn(i);
        return 0;
    });
}

} // namespace hscd

#endif // HSCD_COMMON_PARALLEL_HH
