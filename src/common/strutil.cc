#include "common/strutil.hh"

#include <cctype>
#include <iomanip>
#include <stdexcept>

namespace hscd {
namespace detail {

void
applyFormat(std::ostream &os, const std::string &fmt, std::size_t &pos)
{
    // fmt[pos] == '%'. Parse flags, width, precision, and the conversion
    // character; translate into iostream manipulations.
    std::size_t p = pos + 1;
    bool left = false;
    bool zero = false;
    while (p < fmt.size() && (fmt[p] == '-' || fmt[p] == '0' ||
                              fmt[p] == '+' || fmt[p] == ' ')) {
        if (fmt[p] == '-')
            left = true;
        if (fmt[p] == '0')
            zero = true;
        if (fmt[p] == '+')
            os << std::showpos;
        ++p;
    }
    int width = 0;
    while (p < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[p])))
        width = width * 10 + (fmt[p++] - '0');
    int precision = -1;
    if (p < fmt.size() && fmt[p] == '.') {
        ++p;
        precision = 0;
        while (p < fmt.size() &&
               std::isdigit(static_cast<unsigned char>(fmt[p])))
            precision = precision * 10 + (fmt[p++] - '0');
    }
    // Skip C length modifiers; iostreams don't need them.
    while (p < fmt.size() && (fmt[p] == 'l' || fmt[p] == 'h' ||
                              fmt[p] == 'z' || fmt[p] == 'j'))
        ++p;

    char conv = p < fmt.size() ? fmt[p] : 's';
    ++p;

    if (width > 0)
        os << std::setw(width);
    if (left)
        os << std::left;
    if (zero && !left)
        os << std::setfill('0') << std::internal;

    switch (conv) {
      case 'x':
        os << std::hex;
        break;
      case 'X':
        os << std::hex << std::uppercase;
        break;
      case 'o':
        os << std::oct;
        break;
      case 'f':
        os << std::fixed
           << std::setprecision(precision >= 0 ? precision : 6);
        break;
      case 'e':
        os << std::scientific
           << std::setprecision(precision >= 0 ? precision : 6);
        break;
      case 'g':
        os << std::setprecision(precision >= 0 ? precision : 6);
        break;
      default:
        if (precision >= 0)
            os << std::setprecision(precision);
        break;
    }
    pos = p;
}

} // namespace detail

std::vector<std::string>
split(const std::string &s, char sep, bool keep_empty)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (keep_empty || !cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (keep_empty || !cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
withCommas(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

bool
parseBool(const std::string &s)
{
    const std::string v = toLower(trim(s));
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    throw std::invalid_argument("parseBool: cannot parse '" + s + "'");
}

} // namespace hscd
