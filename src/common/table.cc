#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {

TextTable &
TextTable::col(std::string header, Align align)
{
    _headers.push_back(std::move(header));
    _aligns.push_back(align);
    return *this;
}

TextTable &
TextTable::row()
{
    _rows.push_back({});
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    hscd_assert(!_rows.empty(), "cell() before row()");
    hscd_assert(_rows.back().cells.size() < _headers.size(),
                "too many cells in row");
    _rows.back().cells.push_back(text);
    return *this;
}

TextTable &
TextTable::cell(const char *text)
{
    return cell(std::string(text));
}

TextTable &
TextTable::cell(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return cell(os.str());
}

TextTable &
TextTable::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

TextTable &
TextTable::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

TextTable &
TextTable::cell(int v)
{
    return cell(std::to_string(v));
}

TextTable &
TextTable::cell(unsigned v)
{
    return cell(std::to_string(v));
}

TextTable &
TextTable::rule()
{
    _rows.push_back({});
    _rows.back().is_rule = true;
    return *this;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const Row &r : _rows)
        for (std::size_t c = 0; c < r.cells.size(); ++c)
            widths[c] = std::max(widths[c], r.cells[c].size());

    auto hr = [&] {
        os << "+";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < _headers.size(); ++c) {
            const std::string text = c < cells.size() ? cells[c] : "";
            const std::size_t pad = widths[c] - text.size();
            if (_aligns[c] == Align::Left)
                os << " " << text << std::string(pad, ' ') << " |";
            else
                os << " " << std::string(pad, ' ') << text << " |";
        }
        os << "\n";
    };

    hr();
    emit(_headers);
    hr();
    for (const Row &r : _rows) {
        if (r.is_rule)
            hr();
        else
            emit(r.cells);
    }
    hr();
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace hscd
