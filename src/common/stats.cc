#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    hscd_assert(parent != nullptr, "stat '%s' needs a parent group", _name);
    parent->addStat(this);
}

std::string
Scalar::render() const
{
    return std::to_string(_value);
}

std::string
Average::render() const
{
    return csprintf("%.4f (n=%d)", mean(), _count);
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     double max, unsigned buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      _max(max), _bins(buckets, 0)
{
    hscd_assert(max > 0 && buckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    ++_count;
    _sum += v;
    if (v >= _max) {
        ++_overflow;
        return;
    }
    auto idx = static_cast<std::size_t>(v / _max * _bins.size());
    if (idx >= _bins.size())
        idx = _bins.size() - 1;
    ++_bins[idx];
}

double
Histogram::percentile(double q) const
{
    // Contract: an empty histogram has no quantiles - every q reports
    // 0.0. Out-of-range and non-finite q clamp into [0, 1] (NaN would
    // otherwise reach the integer cast below, which is UB).
    if (_count == 0)
        return 0.0;
    if (!(q > 0))
        q = 0;
    if (q > 1)
        q = 1;
    // Rank of the q-th sample (1-based, ceiling) among count samples.
    auto rank = static_cast<std::uint64_t>(std::ceil(q * double(_count)));
    if (rank == 0)
        rank = 1;
    if (rank > _count)
        rank = _count;
    std::uint64_t seen = 0;
    const double width = _max / double(_bins.size());
    for (std::size_t i = 0; i < _bins.size(); ++i) {
        seen += _bins[i];
        if (seen >= rank)
            return width * double(i + 1);
    }
    return _max; // the rank falls in the overflow mass
}

std::string
Histogram::render() const
{
    std::string out = csprintf(
        "mean=%.3f p50=%.3f p95=%.3f p99=%.3f n=%d [", mean(),
        percentile(0.50), percentile(0.95), percentile(0.99), _count);
    for (std::size_t i = 0; i < _bins.size(); ++i)
        out += (i ? " " : "") + std::to_string(_bins[i]);
    out += csprintf(" | ovf=%d]", _overflow);
    return out;
}

void
Histogram::reset()
{
    std::fill(_bins.begin(), _bins.end(), 0);
    _overflow = 0;
    _count = 0;
    _sum = 0;
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)), _fn(std::move(fn))
{
}

std::string
Formula::render() const
{
    return csprintf("%.6f", value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::addStat(StatBase *stat)
{
    _stats.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    _children.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string path = prefix.empty() ? _name : prefix + "." + _name;
    // Sort by name so the listing is independent of registration order
    // (stable: ties keep registration order for a deterministic total
    // order either way).
    std::vector<const StatBase *> stats(_stats.begin(), _stats.end());
    std::stable_sort(stats.begin(), stats.end(),
                     [](const StatBase *a, const StatBase *b) {
                         return a->name() < b->name();
                     });
    for (const StatBase *s : stats) {
        os << path << "." << s->name() << " = " << s->render();
        if (!s->desc().empty())
            os << "   # " << s->desc();
        os << "\n";
    }
    std::vector<const StatGroup *> children(_children.begin(),
                                            _children.end());
    std::stable_sort(children.begin(), children.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });
    for (const StatGroup *g : children)
        g->dump(os, path);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
    for (StatGroup *g : _children)
        g->resetAll();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : _stats)
        if (s->name() == name)
            return s;
    return nullptr;
}

const StatBase *
StatGroup::lookup(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos)
        return find(path);
    const std::string head = path.substr(0, dot);
    const std::string rest = path.substr(dot + 1);
    for (const StatGroup *g : _children)
        if (g->name() == head)
            return g->lookup(rest);
    return nullptr;
}

} // namespace stats
} // namespace hscd
