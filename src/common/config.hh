/**
 * @file
 * Typed key/value parameter store.
 *
 * Benches and examples describe machine configurations as "key=value"
 * strings; Params validates keys against registered defaults so typos are
 * fatal() instead of silently ignored.
 */

#ifndef HSCD_COMMON_CONFIG_HH
#define HSCD_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hscd {

class Params
{
  public:
    Params() = default;

    /** Register a key with a default value (defines the schema). */
    Params &define(const std::string &key, const std::string &def,
                   const std::string &desc = "");

    /** Set a key that must already be defined. */
    void set(const std::string &key, const std::string &value);

    /** Parse "k=v" (one assignment). */
    void parseAssignment(const std::string &kv);

    /** Parse many assignments, e.g. from argv[1..]. */
    void parseArgs(const std::vector<std::string> &args);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key) const;
    std::int64_t getInt(const std::string &key) const;
    std::uint64_t getUint(const std::string &key) const;
    double getDouble(const std::string &key) const;
    bool getBool(const std::string &key) const;

    /** All keys in definition order (for help text). */
    const std::vector<std::string> &keys() const { return _order; }
    std::string describe(const std::string &key) const;

  private:
    struct Entry
    {
        std::string value;
        std::string desc;
    };

    const Entry &entry(const std::string &key) const;

    std::map<std::string, Entry> _entries;
    std::vector<std::string> _order;
};

} // namespace hscd

#endif // HSCD_COMMON_CONFIG_HH
