/**
 * @file
 * Small bit-twiddling helpers used by the cache and network models.
 */

#ifndef HSCD_COMMON_BITUTIL_HH
#define HSCD_COMMON_BITUTIL_HH

#include <cstdint>

namespace hscd {

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); 0 for v == 0 (callers must check). */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)). */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** A mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace hscd

#endif // HSCD_COMMON_BITUTIL_HH
