/**
 * @file
 * ASCII table renderer used by the benchmark harness to print the paper's
 * tables and figure series.
 */

#ifndef HSCD_COMMON_TABLE_HH
#define HSCD_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace hscd {

class TextTable
{
  public:
    enum class Align { Left, Right };

    /** Add a column with a header and alignment for its cells. */
    TextTable &col(std::string header, Align align = Align::Right);

    /** Begin a new row; subsequent cell() calls fill it left-to-right. */
    TextTable &row();

    TextTable &cell(const std::string &text);
    TextTable &cell(const char *text);
    TextTable &cell(double v, int precision = 2);
    TextTable &cell(std::uint64_t v);
    TextTable &cell(std::int64_t v);
    TextTable &cell(int v);
    TextTable &cell(unsigned v);

    /** Insert a horizontal rule before the next row. */
    TextTable &rule();

    void print(std::ostream &os) const;
    std::string str() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_rule = false;
    };

    std::vector<std::string> _headers;
    std::vector<Align> _aligns;
    std::vector<Row> _rows;
};

} // namespace hscd

#endif // HSCD_COMMON_TABLE_HH
