#include "serve/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/strutil.hh"

namespace hscd {
namespace serve {

namespace {

std::string
errnoMessage(const char *what)
{
    return csprintf("%s: %s", what, std::strerror(errno));
}

} // namespace

Fd &
Fd::operator=(Fd &&o) noexcept
{
    if (this != &o) {
        reset();
        _fd = o._fd;
        o._fd = -1;
    }
    return *this;
}

int
Fd::release()
{
    int fd = _fd;
    _fd = -1;
    return fd;
}

void
Fd::reset(int fd)
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = fd;
}

Fd
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = csprintf("socket path too long: %s", path);
        return Fd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoMessage("socket");
        return Fd();
    }
    ::unlink(path.c_str()); // stale socket from a killed server
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoMessage("bind");
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        error = errnoMessage("listen");
        return Fd();
    }
    return fd;
}

Fd
listenTcp(std::uint16_t port, std::uint16_t &boundPort, std::string &error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoMessage("socket");
        return Fd();
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoMessage("bind");
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        error = errnoMessage("listen");
        return Fd();
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error = errnoMessage("getsockname");
        return Fd();
    }
    boundPort = ntohs(addr.sin_port);
    return fd;
}

Fd
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = csprintf("socket path too long: %s", path);
        return Fd();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoMessage("socket");
        return Fd();
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoMessage("connect");
        return Fd();
    }
    return fd;
}

Fd
connectTcp(std::uint16_t port, std::string &error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoMessage("socket");
        return Fd();
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoMessage("connect");
        return Fd();
    }
    return fd;
}

bool
LineChannel::readLine(std::string &line)
{
    for (;;) {
        const std::size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::read(_fd.get(), chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            line = _buf;
            return false;
        }
        if (n == 0) {
            line = _buf;
            return false; // EOF; partial data left in line
        }
        _buf.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
LineChannel::writeAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(_fd.get(), data.data() + off,
                            data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineChannel::writeLine(const std::string &line)
{
    return writeAll(line + "\n");
}

} // namespace serve
} // namespace hscd
