#include "serve/server.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/strutil.hh"
#include "obs/provenance.hh"
#include "serve/protocol.hh"

namespace hscd {
namespace serve {

namespace {

std::string
rejected(const std::string &error)
{
    return csprintf("{\"ok\": false, \"status\": \"rejected\", "
                    "\"error\": \"%s\"}",
                    obs::jsonEscape(error));
}

/** Single-line provenance object (NDJSON responses must be one line). */
std::string
provenanceLine(std::uint64_t configHash, unsigned jobs)
{
    return csprintf("{\"schema\": \"hscd-serve-stats/1\", "
                    "\"tool\": \"hscd_serve\", "
                    "\"config_hash\": \"%016x\", \"jobs\": %d}",
                    configHash, jobs);
}

} // namespace

Server::Server(ServerOptions opts, CampaignQueue::CellFn runCell)
    : _opts(std::move(opts))
{
    if (_opts.socketPath.empty())
        _opts.socketPath = _opts.stateDir + "/sock";
    _queue = std::make_unique<CampaignQueue>(
        _opts.stateDir, _opts.limits, std::move(runCell),
        _opts.workers ? _opts.workers : 1);
}

Server::~Server()
{
    requestStop(false);
    reapConnections(true);
    if (!_opts.useTcp && _listener.valid())
        ::unlink(_opts.socketPath.c_str());
}

std::size_t
Server::recover()
{
    return _queue->recover();
}

bool
Server::start(std::string &error)
{
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        error = csprintf("pipe: %s", std::strerror(errno));
        return false;
    }
    _wakeRead.reset(pipefd[0]);
    _wakeWrite.reset(pipefd[1]);

    if (_opts.useTcp) {
        _listener = listenTcp(_opts.tcpPort, _boundPort, error);
    } else {
        _listener = listenUnix(_opts.socketPath, error);
    }
    return _listener.valid();
}

void
Server::requestStop(bool drain)
{
    // Runs from signal handlers: only lock-free atomics and write(2).
    _drain.store(drain);
    _stop.store(true);
    if (_wakeWrite.valid()) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(_wakeWrite.get(), &byte, 1);
    }
}

std::size_t
Server::serve()
{
    hscd_assert(_listener.valid(), "serve() before start()");
    while (!_stop.load()) {
        pollfd fds[2];
        fds[0].fd = _listener.get();
        fds[0].events = POLLIN;
        fds[1].fd = _wakeRead.get();
        fds[1].events = POLLIN;
        int rc = ::poll(fds, 2, 1000);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        reapConnections(false);
        if (_stop.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        Fd conn(::accept(_listener.get(), nullptr, nullptr));
        if (!conn.valid())
            continue;
        if (_activeConns.load() >= _opts.maxConnections) {
            // Connection-level backpressure: same shed contract as a
            // full queue, one line and close.
            LineChannel ch(std::move(conn));
            ch.writeLine("{\"ok\": false, \"status\": \"shed\", "
                         "\"retry\": true, "
                         "\"error\": \"too many connections\"}");
            continue;
        }
        ++_activeConns;
        std::lock_guard<std::mutex> lock(_connMu);
        _conns.emplace_back(
            [this](Fd fd) { handleConnection(std::move(fd)); },
            std::move(conn));
    }

    // Stop accepting before draining so late clients get ECONNREFUSED
    // rather than a hang.
    _listener.reset();
    if (!_opts.useTcp)
        ::unlink(_opts.socketPath.c_str());
    reapConnections(true);
    _queue->shutdown(_drain.load());
    return _queue->unfinishedCells();
}

void
Server::reapConnections(bool all)
{
    std::vector<std::thread> stale;
    {
        std::lock_guard<std::mutex> lock(_connMu);
        if (all) {
            stale.swap(_conns);
        } else if (_activeConns.load() == 0) {
            // All handlers returned; their threads just need joining.
            stale.swap(_conns);
        }
    }
    for (std::thread &t : stale)
        if (t.joinable())
            t.join();
}

void
Server::handleConnection(Fd fd)
{
    LineChannel ch(std::move(fd));
    bool first = true;
    for (;;) {
        // Wait politely so a drain isn't held hostage by an idle
        // client: poll with a short timeout and re-check the stop flag.
        pollfd p;
        p.fd = ch.fd();
        p.events = POLLIN;
        int rc = ::poll(&p, 1, 200);
        if (_stop.load())
            break;
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0 || !(p.revents & (POLLIN | POLLHUP)))
            continue;

        std::string line;
        if (!ch.readLine(line))
            break; // EOF or error
        if (first && (line.rfind("GET ", 0) == 0 ||
                      line.rfind("HEAD ", 0) == 0)) {
            handleHttp(ch, line);
            break; // Connection: close
        }
        first = false;
        if (line.empty())
            continue;
        if (!ch.writeLine(handleRequestLine(line)))
            break;
    }
    --_activeConns;
}

void
Server::handleHttp(LineChannel &ch, const std::string &requestLine)
{
    // "GET /path HTTP/1.x" - drain the headers, answer, close.
    std::string hdr;
    while (ch.readLine(hdr) && !hdr.empty() && hdr != "\r") {
    }
    std::istringstream rl(requestLine);
    std::string method, path;
    rl >> method >> path;

    std::string body;
    const char *status = "200 OK";
    if (path == "/healthz") {
        body = healthzJson() + "\n";
    } else if (path == "/stats") {
        body = statsJson() + "\n";
    } else {
        status = "404 Not Found";
        body = "{\"ok\": false, \"error\": \"unknown path\"}\n";
    }
    std::string resp = csprintf(
        "HTTP/1.0 %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n\r\n",
        status, body.size());
    if (method != "HEAD")
        resp += body;
    ch.writeAll(resp);
}

std::string
Server::healthzJson() const
{
    return csprintf(
        "{\"ok\": true, \"status\": \"%s\", \"queue_depth\": %d, "
        "\"campaigns\": %d, \"workers\": %d}",
        _queue->draining() || _stop.load() ? "draining" : "serving",
        _queue->depth(), _queue->campaignCount(), _queue->workers());
}

std::string
Server::statsJson() const
{
    const QueueCounters ctr = _queue->counters();
    std::string extra;
    if (_opts.extraStats) {
        extra = _opts.extraStats();
        if (!extra.empty())
            extra = ", " + extra;
    }
    return csprintf(
        "{\"provenance\": %s, \"status\": \"%s\", "
        "\"queue_depth\": %d, \"campaigns\": %d, "
        "\"counters\": {\"submitted\": %d, \"dedup\": %d, "
        "\"shed\": %d, \"rejected\": %d, \"cells_run\": %d, "
        "\"cells_restored\": %d, \"cell_errors\": %d, "
        "\"completed\": %d, \"deadline_expired\": %d}%s}",
        provenanceLine(obs::fnv1a(_opts.stateDir), _queue->workers()),
        _queue->draining() || _stop.load() ? "draining" : "serving",
        _queue->depth(), _queue->campaignCount(), ctr.submitted,
        ctr.dedup, ctr.shed, ctr.rejected, ctr.cellsRun,
        ctr.cellsRestored, ctr.cellErrors, ctr.completed,
        ctr.deadlineExpired, extra);
}

std::string
Server::handleRequestLine(const std::string &line)
{
    try {
        return dispatchRequest(line);
    } catch (const std::exception &e) {
        // fatal() in the queue (e.g. an unwritable state dir) must
        // become a structured response, not a dead connection thread.
        return csprintf("{\"ok\": false, \"status\": \"internal\", "
                        "\"error\": \"%s\"}",
                        obs::jsonEscape(e.what()));
    }
}

std::string
Server::dispatchRequest(const std::string &line)
{
    JsonValue req;
    std::string error;
    if (!parseJson(line, req, error)) {
        _queue->noteRejected();
        return rejected("bad JSON: " + error);
    }
    const JsonValue *op = req.get("op");
    if (!req.isObject() || !op || !op->isString()) {
        _queue->noteRejected();
        return rejected("missing 'op'");
    }

    if (op->text == "healthz")
        return healthzJson();
    if (op->text == "stats")
        return statsJson();

    if (op->text == "submit") {
        CampaignSpec spec;
        if (!parseSubmit(req, spec, error)) {
            _queue->noteRejected();
            return rejected(error);
        }
        const CampaignQueue::Admission adm = _queue->submit(spec);
        switch (adm.status) {
          case CampaignQueue::Admission::Status::Accepted:
            return csprintf("{\"ok\": true, \"status\": \"accepted\", "
                            "\"id\": \"%016x\", \"queued\": %d}",
                            adm.id, adm.queuedCells);
          case CampaignQueue::Admission::Status::Dedup:
            return csprintf("{\"ok\": true, \"status\": \"dedup\", "
                            "\"id\": \"%016x\", \"queued\": %d}",
                            adm.id, adm.queuedCells);
          case CampaignQueue::Admission::Status::Shed:
          default:
            return csprintf("{\"ok\": false, \"status\": \"shed\", "
                            "\"retry\": true, \"id\": \"%016x\", "
                            "\"error\": \"%s\"}",
                            adm.id, obs::jsonEscape(adm.error));
        }
    }

    if (op->text == "poll") {
        const JsonValue *id = req.get("id");
        if (!id || !id->isString() || id->text.size() != 16) {
            _queue->noteRejected();
            return rejected("missing or bad 'id'");
        }
        char *end = nullptr;
        const std::uint64_t key =
            std::strtoull(id->text.c_str(), &end, 16);
        if (end != id->text.c_str() + 16) {
            _queue->noteRejected();
            return rejected("missing or bad 'id'");
        }
        const CampaignQueue::Status st = _queue->status(key);
        if (!st.known)
            return csprintf("{\"ok\": false, \"status\": \"unknown\", "
                            "\"id\": \"%016x\"}",
                            key);
        std::string resp = csprintf(
            "{\"ok\": true, \"status\": \"%s\", \"id\": \"%016x\", "
            "\"done\": %d, \"total\": %d, \"errors\": %d",
            st.complete ? "complete" : "running", key, st.done, st.total,
            st.errors);
        if (!st.resultPath.empty())
            resp += csprintf(", \"result\": \"%s\"",
                             obs::jsonEscape(st.resultPath));
        return resp + "}";
    }

    if (op->text == "shutdown") {
        bool drain = true;
        if (const JsonValue *d = req.get("drain")) {
            if (!d->isBool()) {
                _queue->noteRejected();
                return rejected("bad 'drain' value");
            }
            drain = d->boolean;
        }
        requestStop(drain);
        return csprintf("{\"ok\": true, \"status\": \"stopping\", "
                        "\"drain\": %s}",
                        drain ? "true" : "false");
    }

    _queue->noteRejected();
    return rejected(csprintf("unknown op '%s'", op->text));
}

} // namespace serve
} // namespace hscd
