#include "serve/protocol.hh"

#include <cmath>
#include <set>

#include "common/log.hh"
#include "common/strutil.hh"
#include "obs/provenance.hh"
#include "workloads/synth.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace serve {

namespace {

/** Hard caps an untrusted submission can never exceed. */
constexpr std::size_t kMaxNameLen = 200;
constexpr std::size_t kMaxCellsAbsolute = 1u << 20;
constexpr unsigned kMaxProcs = 4096;
constexpr unsigned kMaxTimetagBits = 16;
constexpr int kMaxScale = 8;

bool
validWorkloadSpec(const std::string &w, std::string &error)
{
    if (w.empty() || w.size() > kMaxNameLen) {
        error = "bad workload spec";
        return false;
    }
    if (workloads::isTraceSpec(w))
        return true; // file errors surface as structured cell errors
    if (workloads::isSynthSpec(w)) {
        try {
            workloads::parseSynthSpec(w);
            return true;
        } catch (const FatalError &e) {
            error = csprintf("bad synth spec '%s': %s", w, e.what());
            return false;
        }
    }
    for (const std::string &n : workloads::benchmarkNames())
        if (toLower(w) == toLower(n))
            return true;
    error = csprintf("unknown workload '%s'", w);
    return false;
}

/** Fetch a bounded non-negative integer member; false on bad type. */
bool
intField(const JsonValue &obj, const char *key, double maxVal,
         double &out, bool &present, std::string &error)
{
    present = false;
    const JsonValue *v = obj.get(key);
    if (!v)
        return true;
    if (!v->isNumber() || v->number < 0 || v->number > maxVal ||
        v->number != std::floor(v->number)) {
        error = csprintf("bad '%s' value", key);
        return false;
    }
    out = v->number;
    present = true;
    return true;
}

} // namespace

std::string
CampaignSpec::canonical() const
{
    // Identity-relevant fields only; see the header comment for why
    // timeouts/deadlines are excluded. The format is versioned so a
    // grammar change can never collide with old identities.
    std::string s = "hscd-campaign v1";
    s += "|name=" + name;
    s += "|fault=" + faultSpec;
    s += csprintf("|cells=%d", cells.size());
    for (const CellSpec &c : cells) {
        s += csprintf("|%s,%s,%d,%d,%d,%d,%s", c.workload, c.scheme,
                      c.scale, c.affinity ? 1 : 0, c.procs, c.timetagBits,
                      c.label);
    }
    return s;
}

std::uint64_t
CampaignSpec::identity() const
{
    return obs::fnv1a(canonical());
}

std::string
CampaignSpec::toRequestJson() const
{
    JsonValue req;
    req.kind = JsonValue::Kind::Object;
    auto str = [](const std::string &v) {
        JsonValue j;
        j.kind = JsonValue::Kind::String;
        j.text = v;
        return j;
    };
    auto num = [](double v) {
        JsonValue j;
        j.kind = JsonValue::Kind::Number;
        j.number = v;
        return j;
    };
    auto boolean = [](bool v) {
        JsonValue j;
        j.kind = JsonValue::Kind::Bool;
        j.boolean = v;
        return j;
    };
    req.members.emplace_back("op", str("submit"));
    req.members.emplace_back("campaign", str(name));
    if (!faultSpec.empty())
        req.members.emplace_back("fault", str(faultSpec));
    if (timeoutMs > 0)
        req.members.emplace_back("timeout_ms", num(timeoutMs));
    if (deadlineMs > 0)
        req.members.emplace_back("deadline_ms", num(deadlineMs));
    JsonValue arr;
    arr.kind = JsonValue::Kind::Array;
    for (const CellSpec &c : cells) {
        JsonValue cell;
        cell.kind = JsonValue::Kind::Object;
        cell.members.emplace_back("workload", str(c.workload));
        cell.members.emplace_back("scheme", str(c.scheme));
        cell.members.emplace_back("scale", num(c.scale));
        if (!c.affinity)
            cell.members.emplace_back("affinity", boolean(false));
        if (c.procs)
            cell.members.emplace_back("procs", num(c.procs));
        if (c.timetagBits)
            cell.members.emplace_back("timetag_bits", num(c.timetagBits));
        if (c.label != c.workload + "/" + c.scheme)
            cell.members.emplace_back("label", str(c.label));
        arr.items.push_back(std::move(cell));
    }
    req.members.emplace_back("cells", std::move(arr));
    return req.dump();
}

MachineConfig
CampaignSpec::cellConfig(std::size_t i) const
{
    hscd_assert(i < cells.size(), "cell index %d out of range", i);
    const CellSpec &c = cells[i];
    MachineConfig cfg;
    cfg.scheme = parseScheme(c.scheme);
    if (c.procs)
        cfg.procs = c.procs;
    if (c.timetagBits)
        cfg.timetagBits = c.timetagBits;
    if (!faultSpec.empty()) {
        // Same per-cell seed derivation as the sweep engine: the cell
        // index folds into the campaign seed so interrupted and fresh
        // runs inject identical fault sequences.
        cfg.fault = fault::planForCell(fault::FaultPlan::parse(faultSpec),
                                       i);
    }
    return cfg;
}

bool
parseSubmit(const JsonValue &req, CampaignSpec &out, std::string &error,
            std::size_t limitCells)
{
    out = CampaignSpec();
    if (!req.isObject()) {
        error = "request is not a JSON object";
        return false;
    }
    static const std::set<std::string> knownTop = {
        "op", "campaign", "cells", "fault", "timeout_ms", "deadline_ms"};
    for (const auto &m : req.members) {
        if (!knownTop.count(m.first)) {
            error = csprintf("unknown field '%s'", m.first);
            return false;
        }
    }

    const JsonValue *name = req.get("campaign");
    if (!name || !name->isString() || name->text.empty() ||
        name->text.size() > kMaxNameLen) {
        error = "missing or bad 'campaign' name";
        return false;
    }
    out.name = name->text;

    if (const JsonValue *f = req.get("fault")) {
        if (!f->isString()) {
            error = "bad 'fault' value";
            return false;
        }
        try {
            fault::FaultPlan::parse(f->text);
        } catch (const FatalError &e) {
            error = csprintf("bad fault spec: %s", e.what());
            return false;
        }
        out.faultSpec = f->text;
    }

    double v = 0;
    bool present = false;
    if (!intField(req, "timeout_ms", 86400e3, v, present, error))
        return false;
    if (present)
        out.timeoutMs = v;
    if (!intField(req, "deadline_ms", 86400e3, v, present, error))
        return false;
    if (present)
        out.deadlineMs = v;

    const JsonValue *cells = req.get("cells");
    if (!cells || !cells->isArray() || cells->items.empty()) {
        error = "missing or empty 'cells' array";
        return false;
    }
    const std::size_t cap =
        limitCells ? std::min(limitCells, kMaxCellsAbsolute)
                   : kMaxCellsAbsolute;
    if (cells->items.size() > cap) {
        error = csprintf("campaign too large: %d cells (limit %d)",
                         cells->items.size(), cap);
        return false;
    }

    static const std::set<std::string> knownCell = {
        "workload", "scheme",       "scale", "affinity",
        "procs",    "timetag_bits", "label"};
    out.cells.reserve(cells->items.size());
    for (std::size_t i = 0; i < cells->items.size(); ++i) {
        const JsonValue &jc = cells->items[i];
        if (!jc.isObject()) {
            error = csprintf("cell %d is not an object", i);
            return false;
        }
        for (const auto &m : jc.members) {
            if (!knownCell.count(m.first)) {
                error = csprintf("cell %d: unknown field '%s'", i,
                                 m.first);
                return false;
            }
        }
        CellSpec c;
        const JsonValue *w = jc.get("workload");
        if (!w || !w->isString() ||
            !validWorkloadSpec(w->text, error)) {
            if (error.empty())
                error = csprintf("cell %d: missing 'workload'", i);
            else
                error = csprintf("cell %d: %s", i, error);
            return false;
        }
        c.workload = workloads::isTraceSpec(w->text) ||
                             workloads::isSynthSpec(w->text)
                         ? w->text
                         : toLower(w->text);
        const JsonValue *s = jc.get("scheme");
        if (!s || !s->isString()) {
            error = csprintf("cell %d: missing 'scheme'", i);
            return false;
        }
        try {
            // Normalize to the canonical lower-case name so any case
            // the client sends hashes to the same campaign identity.
            c.scheme = toLower(schemeName(parseScheme(s->text)));
        } catch (const FatalError &) {
            error = csprintf("cell %d: unknown scheme '%s'", i, s->text);
            return false;
        }
        if (!intField(jc, "scale", kMaxScale, v, present, error)) {
            error = csprintf("cell %d: %s", i, error);
            return false;
        }
        if (present) {
            if (v < 1) {
                error = csprintf("cell %d: bad 'scale' value", i);
                return false;
            }
            c.scale = static_cast<int>(v);
        }
        if (const JsonValue *a = jc.get("affinity")) {
            if (!a->isBool()) {
                error = csprintf("cell %d: bad 'affinity' value", i);
                return false;
            }
            c.affinity = a->boolean;
        }
        if (!intField(jc, "procs", kMaxProcs, v, present, error)) {
            error = csprintf("cell %d: %s", i, error);
            return false;
        }
        if (present) {
            if (v < 1) {
                error = csprintf("cell %d: bad 'procs' value", i);
                return false;
            }
            c.procs = static_cast<unsigned>(v);
        }
        if (!intField(jc, "timetag_bits", kMaxTimetagBits, v, present,
                      error)) {
            error = csprintf("cell %d: %s", i, error);
            return false;
        }
        if (present) {
            if (v < 1) {
                error = csprintf("cell %d: bad 'timetag_bits' value", i);
                return false;
            }
            c.timetagBits = static_cast<unsigned>(v);
        }
        if (const JsonValue *l = jc.get("label")) {
            if (!l->isString() || l->text.size() > kMaxNameLen) {
                error = csprintf("cell %d: bad 'label' value", i);
                return false;
            }
            c.label = l->text;
        }
        if (c.label.empty())
            c.label = c.workload + "/" + c.scheme;
        out.cells.push_back(std::move(c));
    }
    return true;
}

} // namespace serve
} // namespace hscd
