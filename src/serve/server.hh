/**
 * @file
 * The resident campaign server: socket front-end over CampaignQueue.
 *
 * One process serves line-delimited JSON requests (see
 * serve/protocol.hh for the grammar) on an AF_UNIX socket - by default
 * `<stateDir>/sock` - or on loopback TCP. The same listener also
 * answers plain HTTP GETs for `/healthz` and `/stats`, detected by the
 * "GET " prefix of the first line, so `curl --unix-socket` works
 * without a separate port.
 *
 * Lifecycle contract (mirrors the verify::ExitCode mapping in
 * tools/hscd_serve.cc):
 *  - SIGTERM/SIGINT -> requestStop(drain=true): stop accepting, finish
 *    and journal in-flight cells, leave queued cells durable, exit 0
 *    if the queue drained empty or 4 (structured abort: interrupted
 *    with checkpoint) if journaled work remains.
 *  - kill -9 -> no cooperation needed: the durable queue recovers on
 *    the next start (that is what the chaos harness exercises).
 */

#ifndef HSCD_SERVE_SERVER_HH
#define HSCD_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hh"
#include "serve/queue.hh"

namespace hscd {
namespace serve {

struct ServerOptions
{
    std::string stateDir = "serve-state";
    std::string socketPath; ///< default: <stateDir>/sock
    bool useTcp = false;
    std::uint16_t tcpPort = 0; ///< 0 = ephemeral (printed on start)
    unsigned workers = 0;      ///< simulation workers (0 = 1)
    std::size_t maxConnections = 32;
    QueueLimits limits;
    /**
     * Optional extra members for the /stats object (e.g. compile/sim
     * cache counters owned by the bench layer). Must be a fragment of
     * the form `"key": {...}, "key2": ...` without trailing comma, or
     * empty.
     */
    std::function<std::string()> extraStats;
};

class Server
{
  public:
    Server(ServerOptions opts, CampaignQueue::CellFn runCell);
    ~Server();

    /** Recover durable campaigns; call before serve(). */
    std::size_t recover();

    /** Bind the listener. False (with @p error) on failure. */
    bool start(std::string &error);

    /**
     * Accept and serve until requestStop(). Returns the number of
     * journaled-but-unfinished cells left behind (0 = fully drained).
     */
    std::size_t serve();

    /**
     * Ask the accept loop to stop. Async-signal-safe: a signal handler
     * may call this directly. @p drain finishes in-flight cells.
     */
    void requestStop(bool drain);

    /** Bound TCP port (after start(), TCP mode only). */
    std::uint16_t port() const { return _boundPort; }

    const std::string &socketPath() const { return _opts.socketPath; }

    CampaignQueue &queue() { return *_queue; }

    /**
     * Handle one NDJSON request line, returning the one-line response.
     * Public so unit tests can exercise the protocol without a socket.
     */
    std::string handleRequestLine(const std::string &line);

    /** Single-line /healthz JSON body. */
    std::string healthzJson() const;
    /** Single-line provenance-stamped /stats JSON body. */
    std::string statsJson() const;

  private:
    std::string dispatchRequest(const std::string &line);
    void handleConnection(Fd fd);
    void handleHttp(LineChannel &ch, const std::string &requestLine);
    void reapConnections(bool all);

    ServerOptions _opts;
    std::unique_ptr<CampaignQueue> _queue;
    Fd _listener;
    Fd _wakeRead, _wakeWrite; ///< self-pipe: signals wake the poll loop
    std::uint16_t _boundPort = 0;
    std::atomic<bool> _stop{false};
    std::atomic<bool> _drain{true};
    std::atomic<std::size_t> _activeConns{0};

    std::mutex _connMu;
    std::vector<std::thread> _conns;
};

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_SERVER_HH
