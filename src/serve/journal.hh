/**
 * @file
 * Durable line-oriented journal primitives shared by the sweep
 * checkpoint (`bench/sweep.cc --checkpoint/--resume`) and the campaign
 * server's work queue (`src/serve/queue.cc`).
 *
 * Format contract (established in PR 4, generalized here):
 *
 *   <magic> <16-hex-digit identity>\n        header, written first
 *   <record tokens...>\n                     one line per completed unit
 *
 * Records are whitespace-separated tokens, appended and flushed as each
 * unit of work finishes, so a `kill -9` can tear at most the final
 * line. Every RunResult field round-trips bit-exactly (doubles travel
 * as IEEE bit patterns), which is what lets a resumed run reproduce
 * byte-identical aggregate output without re-running finished work.
 *
 * Robustness contract:
 *  - A torn or corrupt *record* (the interrupted writer's tail) fails
 *    to decode and the unit is simply re-run.
 *  - A torn or malformed *header* - including one truncated inside the
 *    identity hash - makes the whole file invalid: parseJournalHeader
 *    only accepts the exact magic followed by exactly 16 hex digits
 *    and nothing else. A truncated identity is therefore rejected as
 *    "not a journal", never misparsed as a shorter (foreign) identity.
 *  - A well-formed header with a different identity is foreign and
 *    must be refused by the caller.
 */

#ifndef HSCD_SERVE_JOURNAL_HH
#define HSCD_SERVE_JOURNAL_HH

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/result.hh"

namespace hscd {
namespace serve {

/** Whitespace-free token encoding; the empty string becomes "-". */
std::string escapeTok(const std::string &s);
std::string unescapeTok(const std::string &t);

/** IEEE-754 bit pattern as 16 hex digits (bit-exact double travel). */
std::string doubleBits(double v);

/** Strict token reader: any malformed/missing token poisons the line. */
struct TokenReader
{
    explicit TokenReader(const std::string &line) : in(line) {}

    std::string tok();
    std::uint64_t u64(int base = 10);
    double f64();
    std::string str() { return unescapeTok(tok()); }
    /** True when every token so far parsed and nothing is left over. */
    bool atEnd();

    std::istringstream in;
    bool ok = true;
};

/** Append every RunResult field as journal tokens (leading spaces). */
void encodeResult(std::ostream &s, const sim::RunResult &r);

/**
 * Decode a RunResult previously written by encodeResult. Returns false
 * on any malformed token or implausible length prefix (torn tail).
 */
bool decodeResult(TokenReader &in, sim::RunResult &r);

/** Render the one-line journal header for @p magic and @p identity. */
std::string journalHeader(const std::string &magic, std::uint64_t identity);

/**
 * Strictly parse a journal header line. Accepts exactly
 * `<magic> <16 hex digits>` - no prefix, no suffix, no short identity.
 * Returns true and fills @p identity on success; false on anything
 * else, including a header torn mid-magic or mid-identity.
 */
bool parseJournalHeader(const std::string &line, const std::string &magic,
                        std::uint64_t &identity);

/**
 * Emit the per-cell result fields of the sweep/server JSON schema:
 * `"fingerprint"` through the conditional abort/error/profile block,
 * 6-space indented, no trailing newline or comma. Shared by
 * bench/sweep.cc (--json) and the campaign aggregate writer so the two
 * schemas can never drift apart.
 */
void writeResultCellJson(std::ostream &f, const sim::RunResult &r,
                         const std::string &error);

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_JOURNAL_HH
