/**
 * @file
 * Minimal strict JSON parser for the campaign server's request
 * grammar.
 *
 * The toolchain has always *written* JSON (sweep results, metrics,
 * timelines) but never needed to read arbitrary JSON until requests
 * started arriving over a socket. This parser is deliberately small
 * and strict: UTF-8 pass-through, no comments, no trailing commas, no
 * NaN/Infinity, bounded nesting depth, and "whole input or nothing" -
 * trailing garbage after the top-level value is an error. Numbers are
 * held as doubles (plenty for the request grammar's small integers);
 * object member order is preserved so canonical re-rendering is
 * stable.
 *
 * Failure is a return value, never an exception: a malformed request
 * line from an untrusted client must produce a structured 400-style
 * response, not a crash or a fatal().
 */

#ifndef HSCD_SERVE_JSON_HH
#define HSCD_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hscd {
namespace serve {

struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text; ///< String payload
    std::vector<JsonValue> items; ///< Array payload
    /** Object payload, in source order (stable re-rendering). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Typed accessors with defaults (no coercion across kinds). */
    std::string asString(const std::string &dflt = "") const;
    double asNumber(double dflt = 0) const;
    bool asBool(bool dflt = false) const;

    /** Compact single-line rendering (stable member order). */
    std::string dump() const;
};

/**
 * Parse @p text as one complete JSON value. On failure returns false
 * and fills @p error with a short position-stamped reason.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &error);

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_JSON_HH
