#include "serve/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/strutil.hh"
#include "obs/provenance.hh"

namespace hscd {
namespace serve {

namespace {

/** Recursive-descent parser over a bounded input. */
struct Parser
{
    const std::string &src;
    std::size_t pos = 0;
    std::string error;

    static constexpr int kMaxDepth = 32;

    explicit Parser(const std::string &s) : src(s) {}

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = csprintf("%s at byte %d", why, pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' || src[pos] == '\n' ||
                src[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (src.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= src.size() || src[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < src.size()) {
            const unsigned char c = src[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= src.size())
                    return fail("truncated escape");
                const char e = src[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > src.size())
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = src[pos + i];
                        if (!std::isxdigit(static_cast<unsigned char>(h)))
                            return fail("bad \\u escape");
                        v = v * 16 +
                            (std::isdigit(static_cast<unsigned char>(h))
                                 ? h - '0'
                                 : std::tolower(h) - 'a' + 10);
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point (requests are
                    // ASCII in practice; surrogate pairs unsupported).
                    if (v < 0x80) {
                        out += static_cast<char>(v);
                    } else if (v < 0x800) {
                        out += static_cast<char>(0xc0 | (v >> 6));
                        out += static_cast<char>(0x80 | (v & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (v >> 12));
                        out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (v & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("control character in string");
            out += static_cast<char>(c);
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= src.size())
            return fail("unexpected end of input");
        const char c = src[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < src.size() && src[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos >= src.size() || src[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos < src.size() && src[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < src.size() && src[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < src.size() && src[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (pos < src.size() && src[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < src.size() && src[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        // Number: strict JSON grammar via manual scan, then strtod.
        const std::size_t start = pos;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        if (pos >= src.size() ||
            !std::isdigit(static_cast<unsigned char>(src[pos])))
            return fail("expected value");
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos < src.size() && src[pos] == '.') {
            ++pos;
            if (pos >= src.size() ||
                !std::isdigit(static_cast<unsigned char>(src[pos])))
                return fail("bad number");
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            ++pos;
            if (pos < src.size() && (src[pos] == '+' || src[pos] == '-'))
                ++pos;
            if (pos >= src.size() ||
                !std::isdigit(static_cast<unsigned char>(src[pos])))
                return fail("bad exponent");
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(src.substr(start, pos - start).c_str(),
                                 nullptr);
        return true;
    }
};

void
dumpValue(const JsonValue &v, std::string &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number: {
        // Integers render without a decimal point (the request grammar
        // is integer-valued); anything else gets shortest-round-trip.
        const double d = v.number;
        if (d == static_cast<double>(static_cast<long long>(d)))
            out += csprintf("%d", static_cast<long long>(d));
        else
            out += csprintf("%.17g", d);
        break;
      }
      case JsonValue::Kind::String:
        out += '"' + obs::jsonEscape(v.text) + '"';
        break;
      case JsonValue::Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                out += ',';
            dumpValue(v.items[i], out);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                out += ',';
            out += '"' + obs::jsonEscape(v.members[i].first) + "\":";
            dumpValue(v.members[i].second, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::string
JsonValue::asString(const std::string &dflt) const
{
    return kind == Kind::String ? text : dflt;
}

double
JsonValue::asNumber(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    // A hard input bound keeps a hostile client from feeding the server
    // an unbounded allocation through one request line.
    constexpr std::size_t kMaxInput = 8u << 20;
    if (text.size() > kMaxInput) {
        error = "input too large";
        return false;
    }
    Parser p(text);
    out = JsonValue();
    if (!p.parseValue(out, 0)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = csprintf("trailing garbage at byte %d", p.pos);
        return false;
    }
    return true;
}

} // namespace serve
} // namespace hscd
