#include "serve/queue.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/strutil.hh"
#include "obs/provenance.hh"
#include "serve/journal.hh"

namespace fs = std::filesystem;

namespace hscd {
namespace serve {

namespace {

/**
 * Campaign journal magic. Distinct from the sweep checkpoint magic so a
 * sweep checkpoint dropped into the server state dir is refused as
 * foreign instead of silently merged.
 */
const char *const kServeJournalMagic = "hscd-serve-journal v1";

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return "";
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/**
 * Write @p content to @p path via tmp-file + rename so the file is
 * either whole or absent after a crash. flush() pushes the bytes to the
 * OS, which survives `kill -9` of this process (the crash model the
 * chaos harness exercises; whole-machine power loss is out of scope,
 * as it is for the sweep checkpoint).
 */
bool
atomicWrite(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return false;
        f << content;
        f.flush();
        if (!f)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace

CampaignQueue::CampaignQueue(std::string stateDir, QueueLimits limits,
                             CellFn runCell, unsigned workers)
    : _stateDir(std::move(stateDir)), _limits(limits),
      _runCell(std::move(runCell)),
      _workers(workers ? workers : 1)
{
    std::error_code ec;
    fs::create_directories(_stateDir, ec);
    if (ec)
        fatal("cannot create state directory '%s': %s", _stateDir,
              ec.message());
    _threads.reserve(_workers);
    for (unsigned i = 0; i < _workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

CampaignQueue::~CampaignQueue()
{
    shutdown(false);
}

std::string
CampaignQueue::reqPath(std::uint64_t id) const
{
    return _stateDir + "/" + csprintf("%016x", id) + ".req";
}

std::string
CampaignQueue::journalPath(std::uint64_t id) const
{
    return _stateDir + "/" + csprintf("%016x", id) + ".journal";
}

std::string
CampaignQueue::resultPath(std::uint64_t id) const
{
    return _stateDir + "/" + csprintf("%016x", id) + ".result.json";
}

bool
CampaignQueue::loadJournal(Campaign &c)
{
    std::ifstream f(journalPath(c.id));
    if (!f)
        return true; // no journal yet: nothing recorded

    std::string line;
    if (!std::getline(f, line)) {
        // Empty file (crash between create and header flush): treat as
        // absent and rewrite from scratch.
        return true;
    }
    std::uint64_t identity = 0;
    if (!parseJournalHeader(line, kServeJournalMagic, identity)) {
        // Torn or malformed header - including one truncated inside the
        // identity hash. Structurally not ours: set it aside rather
        // than guessing.
        Log::emit("serve",
                  csprintf("discarding journal with invalid header: %s",
                           journalPath(c.id)));
        std::error_code ec;
        fs::rename(journalPath(c.id), journalPath(c.id) + ".invalid", ec);
        return true;
    }
    if (identity != c.id) {
        Log::emit("serve",
                  csprintf("journal %s is foreign (id %016x != %016x); "
                           "set aside",
                           journalPath(c.id), identity, c.id));
        std::error_code ec;
        fs::rename(journalPath(c.id), journalPath(c.id) + ".foreign", ec);
        return false;
    }

    std::vector<std::string> validLines;
    validLines.push_back(line);
    bool sawTorn = false;
    while (std::getline(f, line)) {
        if (line.empty())
            continue;
        TokenReader in(line);
        if (in.tok() != "cell") {
            sawTorn = true;
            continue;
        }
        std::uint64_t idx = in.u64();
        std::string error = in.str();
        sim::RunResult r;
        if (!decodeResult(in, r) || !in.atEnd() || idx >= c.results.size()
            || c.have[idx]) {
            // Torn tail (or duplicate): drop the record, re-run the cell.
            sawTorn = true;
            continue;
        }
        c.results[idx] = r;
        c.errors[idx] = error;
        c.have[idx] = 1;
        ++c.done;
        validLines.push_back(line);
    }
    f.close();

    if (sawTorn) {
        // Compact away the torn tail before reopening for append, so a
        // new record can never concatenate onto a half-written line.
        std::string body;
        for (const std::string &l : validLines)
            body += l + "\n";
        if (!atomicWrite(journalPath(c.id), body))
            fatal("cannot rewrite journal '%s'", journalPath(c.id));
    }
    return true;
}

bool
CampaignQueue::openJournal(Campaign &c, bool hasHeader)
{
    c.journal.open(journalPath(c.id), std::ios::app);
    if (!c.journal)
        return false;
    if (!hasHeader) {
        c.journal << journalHeader(kServeJournalMagic, c.id) << "\n";
        c.journal.flush();
    }
    return c.journal.good();
}

std::size_t
CampaignQueue::recover()
{
    std::vector<std::string> reqs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(_stateDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() == 16 + 4 && name.substr(16) == ".req")
            reqs.push_back(entry.path().string());
    }
    std::sort(reqs.begin(), reqs.end()); // deterministic recovery order

    std::size_t recovered = 0;
    for (const std::string &path : reqs) {
        const std::string text = readFile(path);
        JsonValue req;
        std::string error;
        CampaignSpec spec;
        if (!parseJson(text, req, error) ||
            !parseSubmit(req, spec, error)) {
            Log::emit("serve",
                      csprintf("skipping unreadable request %s: %s", path,
                               error));
            continue;
        }
        const std::uint64_t id = spec.identity();
        if (path != reqPath(id)) {
            Log::emit("serve",
                      csprintf("skipping request %s: identity %016x "
                               "mismatch",
                               path, id));
            continue;
        }

        auto c = std::make_shared<Campaign>();
        c->spec = std::move(spec);
        c->id = id;
        c->results.resize(c->spec.cells.size());
        c->errors.resize(c->spec.cells.size());
        c->have.assign(c->spec.cells.size(), 0);
        c->started.assign(c->spec.cells.size(), 0);
        c->admitted = std::chrono::steady_clock::now();

        if (fs::exists(resultPath(id))) {
            // Finished in a previous life; resident only for
            // poll/dedup, nothing to re-run.
            c->complete = true;
            c->done = c->spec.cells.size();
            std::fill(c->have.begin(), c->have.end(), 1);
            std::fill(c->started.begin(), c->started.end(), 1);
        } else {
            const bool hadJournal = fs::exists(journalPath(id));
            loadJournal(*c); // foreign journal was set aside: start fresh
            const bool headerKept =
                hadJournal && fs::exists(journalPath(id));
            if (!openJournal(*c, headerKept))
                fatal("cannot open journal '%s'", journalPath(id));
        }

        std::lock_guard<std::mutex> lock(_mu);
        if (_campaigns.count(id))
            continue;
        _counters.cellsRestored += c->done;
        _campaigns[id] = c;
        ++recovered;
        if (!c->complete) {
            if (c->done == c->spec.cells.size()) {
                // All cells journaled but the aggregate rename never
                // happened: finish it now.
                writeAggregate(*c);
                c->complete = true;
                ++_counters.completed;
            } else {
                enqueueRemaining(c);
            }
        }
    }
    _cv.notify_all();
    return recovered;
}

CampaignQueue::Admission
CampaignQueue::submit(const CampaignSpec &spec)
{
    Admission adm;
    adm.id = spec.identity();

    std::unique_lock<std::mutex> lock(_mu);
    if (_stopping) {
        adm.status = Admission::Status::Shed;
        adm.error = "server is draining";
        ++_counters.shed;
        return adm;
    }
    auto it = _campaigns.find(adm.id);
    if (it != _campaigns.end()) {
        adm.status = Admission::Status::Dedup;
        adm.queuedCells = _queue.size();
        ++_counters.dedup;
        return adm;
    }
    if (spec.cells.size() > _limits.maxCampaignCells) {
        adm.status = Admission::Status::Shed;
        adm.error = csprintf("campaign too large: %d cells (limit %d)",
                             spec.cells.size(), _limits.maxCampaignCells);
        ++_counters.shed;
        return adm;
    }
    if (_campaigns.size() >= _limits.maxCampaigns) {
        adm.status = Admission::Status::Shed;
        adm.error = csprintf("too many resident campaigns (limit %d)",
                             _limits.maxCampaigns);
        ++_counters.shed;
        return adm;
    }
    if (_queue.size() + spec.cells.size() > _limits.maxQueuedCells) {
        adm.status = Admission::Status::Shed;
        adm.error = csprintf(
            "queue full: %d queued + %d submitted > %d (retry later)",
            _queue.size(), spec.cells.size(), _limits.maxQueuedCells);
        ++_counters.shed;
        return adm;
    }

    // Admitted. Make the request durable *before* acknowledging: once
    // the caller sees Accepted, a kill -9 must not lose the campaign.
    lock.unlock();
    auto c = std::make_shared<Campaign>();
    c->spec = spec;
    c->id = adm.id;
    c->results.resize(spec.cells.size());
    c->errors.resize(spec.cells.size());
    c->have.assign(spec.cells.size(), 0);
    c->started.assign(spec.cells.size(), 0);
    c->admitted = std::chrono::steady_clock::now();
    if (!atomicWrite(reqPath(adm.id), spec.toRequestJson() + "\n")) {
        std::lock_guard<std::mutex> relock(_mu);
        adm.status = Admission::Status::Shed;
        adm.error = "cannot persist request (state dir unwritable)";
        ++_counters.shed;
        return adm;
    }
    // A journal may survive from an earlier acknowledged run of this
    // same campaign whose .req was lost; adopt its completed cells.
    const bool hadJournal = fs::exists(journalPath(adm.id));
    loadJournal(*c);
    const bool headerKept = hadJournal && fs::exists(journalPath(adm.id));
    if (!openJournal(*c, headerKept)) {
        std::lock_guard<std::mutex> relock(_mu);
        adm.status = Admission::Status::Shed;
        adm.error = "cannot open journal (state dir unwritable)";
        ++_counters.shed;
        return adm;
    }

    lock.lock();
    if (_campaigns.count(adm.id)) {
        // Raced with a concurrent identical submission: defer to it.
        adm.status = Admission::Status::Dedup;
        ++_counters.dedup;
        return adm;
    }
    _campaigns[adm.id] = c;
    ++_counters.submitted;
    _counters.cellsRestored += c->done;
    adm.status = Admission::Status::Accepted;
    if (c->done == c->spec.cells.size()) {
        writeAggregate(*c);
        c->complete = true;
        ++_counters.completed;
    } else {
        enqueueRemaining(c);
    }
    adm.queuedCells = _queue.size();
    _cv.notify_all();
    return adm;
}

void
CampaignQueue::enqueueRemaining(const std::shared_ptr<Campaign> &c)
{
    // Caller holds _mu. Submission order: the queue preserves cell
    // order within a campaign so output ordering never depends on
    // which worker finishes first (aggregation is index-keyed anyway).
    for (std::size_t i = 0; i < c->spec.cells.size(); ++i) {
        if (!c->have[i] && !c->started[i]) {
            c->started[i] = 1;
            _queue.push_back(Work{c, i});
        }
    }
}

CampaignQueue::Status
CampaignQueue::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(_mu);
    Status st;
    auto it = _campaigns.find(id);
    if (it == _campaigns.end())
        return st;
    const Campaign &c = *it->second;
    st.known = true;
    st.complete = c.complete;
    st.done = c.done;
    st.total = c.spec.cells.size();
    for (std::size_t i = 0; i < c.errors.size(); ++i)
        if (c.have[i] && !c.errors[i].empty())
            ++st.errors;
    if (c.complete)
        st.resultPath = resultPath(id);
    return st;
}

void
CampaignQueue::workerLoop()
{
    for (;;) {
        Work w;
        {
            std::unique_lock<std::mutex> lock(_mu);
            _cv.wait(lock, [this] { return _stopping || !_queue.empty(); });
            if (_stopping)
                return; // queued cells stay journal-durable
            w = _queue.front();
            _queue.pop_front();
            ++_inFlight;
        }

        const CampaignSpec &spec = w.campaign->spec;
        bool expired = false;
        if (spec.deadlineMs > 0) {
            const auto elapsed =
                std::chrono::steady_clock::now() - w.campaign->admitted;
            const double ms =
                std::chrono::duration<double, std::milli>(elapsed).count();
            expired = ms > spec.deadlineMs;
        }

        sim::RunResult r;
        std::string error;
        if (expired) {
            error = csprintf("campaign deadline (%.0f ms) exceeded",
                             spec.deadlineMs);
        } else {
            try {
                r = _runCell(spec, w.cell);
            } catch (const FatalError &e) {
                error = e.what();
            } catch (const std::exception &e) {
                error = e.what();
            }
        }
        recordOutcome(w.campaign, w.cell, r, error, true);

        {
            std::lock_guard<std::mutex> lock(_mu);
            --_inFlight;
            if (expired)
                ++_counters.deadlineExpired;
            else
                ++_counters.cellsRun;
            if (!error.empty())
                ++_counters.cellErrors;
        }
        finishIfComplete(w.campaign);
    }
}

void
CampaignQueue::recordOutcome(const std::shared_ptr<Campaign> &c,
                             std::size_t cell, const sim::RunResult &r,
                             const std::string &error, bool journalIt)
{
    if (journalIt) {
        // One flushed line per completed cell; a kill -9 tears at most
        // this line, and a torn line just re-runs the cell.
        std::lock_guard<std::mutex> jlock(c->journalMu);
        c->journal << "cell " << cell << ' ' << escapeTok(error);
        encodeResult(c->journal, r);
        c->journal << '\n';
        c->journal.flush();
    }
    std::lock_guard<std::mutex> lock(_mu);
    if (c->have[cell])
        return;
    c->results[cell] = r;
    c->errors[cell] = error;
    c->have[cell] = 1;
    ++c->done;
}

void
CampaignQueue::finishIfComplete(const std::shared_ptr<Campaign> &c)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (c->complete || c->done != c->spec.cells.size())
        return;
    writeAggregate(*c);
    c->complete = true;
    ++_counters.completed;
}

void
CampaignQueue::writeAggregate(Campaign &c)
{
    // Deliberately timing-free: apart from provenance `jobs` (the one
    // field allowed to vary), the aggregate depends only on the
    // submission - which is what lets the chaos harness demand
    // byte-identical output across kill -9 interruptions.
    using obs::jsonEscape;
    obs::Provenance prov;
    prov.schema = "hscd-serve-campaign";
    prov.tool = "hscd_serve";
    prov.configHash = c.id;
    prov.faultSpec = c.spec.faultSpec.empty() ? "off" : c.spec.faultSpec;
    prov.jobs = _workers;

    std::ostringstream f;
    f << "{\n  \"provenance\": " << prov.json(2) << ",\n";
    f << "  \"campaign\": \"" << jsonEscape(c.spec.name) << "\",\n";
    f << "  \"id\": \"" << csprintf("%016x", c.id) << "\",\n";
    f << "  \"cells\": [\n";
    for (std::size_t i = 0; i < c.spec.cells.size(); ++i) {
        const CellSpec &cell = c.spec.cells[i];
        f << "    {\n";
        f << "      \"label\": \"" << jsonEscape(cell.label) << "\",\n";
        f << "      \"workload\": \"" << jsonEscape(cell.workload)
          << "\",\n";
        f << "      \"scheme\": \"" << jsonEscape(cell.scheme) << "\",\n";
        f << "      \"scale\": " << cell.scale << ",\n";
        f << "      \"affinity\": " << (cell.affinity ? "true" : "false")
          << ",\n";
        writeResultCellJson(f, c.results[i], c.errors[i]);
        f << "\n    }" << (i + 1 < c.spec.cells.size() ? "," : "")
          << "\n";
    }
    f << "  ]\n}\n";
    if (!atomicWrite(resultPath(c.id), f.str()))
        fatal("cannot write campaign result '%s'", resultPath(c.id));
}

void
CampaignQueue::shutdown(bool drain)
{
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (_stopping && _threads.empty())
            return;
        _stopping = true;
        if (!drain) {
            // Fast stop: even queued work already claimed by no worker
            // is abandoned (it stays durable in the journals).
            _queue.clear();
        }
    }
    _cv.notify_all();
    // join() waits for in-flight cells to finish and journal - that is
    // the "drain" guarantee; cells cannot be interrupted mid-run.
    for (std::thread &t : _threads)
        if (t.joinable())
            t.join();
    _threads.clear();
}

std::size_t
CampaignQueue::depth() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _queue.size();
}

std::size_t
CampaignQueue::campaignCount() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _campaigns.size();
}

std::size_t
CampaignQueue::unfinishedCells() const
{
    std::lock_guard<std::mutex> lock(_mu);
    std::size_t n = 0;
    for (const auto &kv : _campaigns)
        if (!kv.second->complete)
            n += kv.second->spec.cells.size() - kv.second->done;
    return n;
}

void
CampaignQueue::noteRejected()
{
    std::lock_guard<std::mutex> lock(_mu);
    ++_counters.rejected;
}

QueueCounters
CampaignQueue::counters() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _counters;
}

bool
CampaignQueue::draining() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stopping;
}

} // namespace serve
} // namespace hscd
