/**
 * @file
 * Minimal socket plumbing for the campaign server and its clients.
 *
 * The server listens on an AF_UNIX stream socket by default (a path in
 * the state directory - no ports to collide on, works in CI sandboxes)
 * or on loopback TCP when asked. Both sides speak line-delimited
 * frames; LineChannel adds buffered line reads and full-line writes on
 * top of a raw fd, tolerating partial reads/writes and EINTR.
 *
 * Everything here returns errors by value (bool + errno-style message)
 * rather than throwing: a dead peer is a normal event for a server.
 */

#ifndef HSCD_SERVE_NET_HH
#define HSCD_SERVE_NET_HH

#include <cstdint>
#include <string>

namespace hscd {
namespace serve {

/** RAII file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { reset(); }
    Fd(Fd &&o) noexcept : _fd(o._fd) { o._fd = -1; }
    Fd &operator=(Fd &&o) noexcept;
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    /** Release ownership without closing. */
    int release();
    void reset(int fd = -1);

  private:
    int _fd = -1;
};

/**
 * Listen on an AF_UNIX stream socket at @p path (any stale socket file
 * is unlinked first). Returns an invalid Fd with @p error set on
 * failure.
 */
Fd listenUnix(const std::string &path, std::string &error);

/**
 * Listen on loopback TCP port @p port (0 = ephemeral). @p boundPort
 * receives the actual port.
 */
Fd listenTcp(std::uint16_t port, std::uint16_t &boundPort,
             std::string &error);

/** Connect to an AF_UNIX socket at @p path. */
Fd connectUnix(const std::string &path, std::string &error);

/** Connect to loopback TCP @p port. */
Fd connectTcp(std::uint16_t port, std::string &error);

/**
 * Buffered line framing over a connected stream fd. Does not own the
 * fd unless constructed from an Fd rvalue.
 */
class LineChannel
{
  public:
    explicit LineChannel(Fd fd) : _fd(std::move(fd)) {}

    /**
     * Read one '\n'-terminated line (terminator stripped). Returns
     * false on EOF or error; @p line holds any partial data.
     */
    bool readLine(std::string &line);

    /** Write @p line plus '\n', retrying partial writes. */
    bool writeLine(const std::string &line);

    /** Write raw bytes (for HTTP responses), retrying partials. */
    bool writeAll(const std::string &data);

    int fd() const { return _fd.get(); }

  private:
    Fd _fd;
    std::string _buf;
};

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_NET_HH
