/**
 * @file
 * Request grammar for the campaign server.
 *
 * Clients speak line-delimited JSON over the server socket; one line is
 * one request, answered by exactly one response line. The submission
 * grammar is strict in the sweep-CLI tradition: unknown keys, bad
 * types, unknown workloads/schemes and out-of-range values are
 * structured 400-style errors, never silently ignored (a typo must not
 * change a campaign).
 *
 *   {"op":"submit","campaign":"nightly","cells":[
 *      {"workload":"ocean","scheme":"tpi","scale":1},
 *      {"workload":"synth:stencil:7","scheme":"hw","procs":32}],
 *    "fault":"1e-3:9","timeout_ms":60000,"deadline_ms":600000}
 *
 *   {"op":"poll","id":"<16-hex campaign id>"}
 *   {"op":"healthz"}   {"op":"stats"}
 *
 * A campaign's identity is an FNV-1a hash over everything that
 * determines what its cells compute (workloads, schemes, configs,
 * fault spec) - deliberately excluding execution parameters (timeouts,
 * deadlines) that may differ between an interrupted submission and its
 * retry. Identity doubles as the durable queue's journal key and makes
 * resubmission idempotent: re-submitting after a crash attaches to the
 * journaled campaign instead of re-running finished cells.
 */

#ifndef HSCD_SERVE_PROTOCOL_HH
#define HSCD_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/machine_config.hh"
#include "serve/json.hh"

namespace hscd {
namespace serve {

/** One simulation cell of a submitted campaign. */
struct CellSpec
{
    std::string workload; ///< benchmark name, synth:<f>:<s>, trace:<file>
    std::string scheme;   ///< canonical lower-case scheme name
    int scale = 1;
    bool affinity = true;
    unsigned procs = 0;       ///< 0 = MachineConfig default
    unsigned timetagBits = 0; ///< 0 = MachineConfig default
    std::string label;        ///< defaults to "workload/scheme"
};

/** A batched sweep submission. */
struct CampaignSpec
{
    std::string name;
    std::vector<CellSpec> cells;
    std::string faultSpec; ///< "" = fault injection off
    double timeoutMs = 0;  ///< per-cell budget (0 = none)
    double deadlineMs = 0; ///< whole-campaign budget (0 = none)

    /**
     * Canonical rendering of everything identity-relevant; stable
     * across processes so interrupted and fresh submissions hash alike.
     */
    std::string canonical() const;

    /** FNV-1a of canonical(): the journal/dedup key. */
    std::uint64_t identity() const;

    /**
     * Re-render as a canonical submit-request line (the durable .req
     * record). parseSubmit(toRequestJson()) round-trips exactly.
     */
    std::string toRequestJson() const;

    /** MachineConfig for cell @p i (applies the per-cell fault plan). */
    MachineConfig cellConfig(std::size_t i) const;
};

/**
 * Validate and convert a parsed submit request. Returns true on
 * success; false with a one-line reason in @p error (safe to echo to
 * the client). @p limitCells bounds the per-campaign cell count
 * (0 = unlimited).
 */
bool parseSubmit(const JsonValue &req, CampaignSpec &out,
                 std::string &error, std::size_t limitCells = 0);

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_PROTOCOL_HH
