#include "serve/journal.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/strutil.hh"
#include "obs/provenance.hh"

namespace hscd {
namespace serve {

std::string
escapeTok(const std::string &s)
{
    if (s.empty())
        return "-";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '%' || c <= ' ' || c == 0x7f || (out.empty() && c == '-'))
            out += csprintf("%%%02x", unsigned(c));
        else
            out += static_cast<char>(c);
    }
    return out;
}

std::string
unescapeTok(const std::string &t)
{
    if (t == "-")
        return "";
    std::string out;
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i] == '%' && i + 2 < t.size()) {
            out += static_cast<char>(
                std::strtoul(t.substr(i + 1, 2).c_str(), nullptr, 16));
            i += 2;
        } else {
            out += t[i];
        }
    }
    return out;
}

std::string
doubleBits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return csprintf("%016x", u);
}

std::string
TokenReader::tok()
{
    std::string t;
    if (!(in >> t))
        ok = false;
    return t;
}

std::uint64_t
TokenReader::u64(int base)
{
    const std::string t = tok();
    if (!ok)
        return 0;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(t.c_str(), &end, base);
    if (end == t.c_str() || *end != '\0')
        ok = false;
    return v;
}

double
TokenReader::f64()
{
    std::uint64_t u = u64(16);
    double v = 0;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

bool
TokenReader::atEnd()
{
    if (!ok)
        return false;
    std::string t;
    return !(in >> t);
}

void
encodeResult(std::ostream &s, const sim::RunResult &r)
{
    auto u = [&](std::uint64_t v) { s << ' ' << v; };
    auto d = [&](double v) { s << ' ' << doubleBits(v); };
    auto str = [&](const std::string &v) { s << ' ' << escapeTok(v); };

    u(r.cycles); u(r.epochs); u(r.parallelEpochs); u(r.tasks);
    u(r.reads); u(r.writes); u(r.readHits); u(r.readMisses);
    d(r.readMissRate); d(r.avgMissLatency);
    u(r.missCold); u(r.missReplacement); u(r.missTrueShare);
    u(r.missFalseShare); u(r.missConservative); u(r.missTagReset);
    u(r.missUncached);
    u(r.timeReads); u(r.timeReadHits); u(r.bypassReads);
    u(r.readPackets); u(r.writePackets); u(r.coherencePackets);
    u(r.writebackPackets);
    u(r.readWords); u(r.writeWords); u(r.writebackWords);
    u(r.trafficPackets); u(r.trafficWords);
    u(r.busyMax); d(r.busyAvg); u(r.serialCycles);
    u(r.oracleViolations); u(r.doallViolations);
    u(r.firstViolations.size());
    for (const sim::OracleViolation &v : r.firstViolations) {
        u(v.addr); u(v.ref); u(v.seen); u(v.expected);
        u(v.epoch); u(v.proc);
    }
    u(r.shadowViolations);
    u(r.firstShadowViolations.size());
    for (const sim::ShadowViolation &v : r.firstShadowViolations) {
        u(v.addr); u(v.ref); u(v.proc); u(v.epoch);
        u(v.writerProc); u(v.writerEpoch);
    }
    u(static_cast<std::uint64_t>(r.abort.kind));
    str(r.abort.reason);
    u(r.abort.cycle); u(r.abort.epoch); u(r.abort.proc);
    str(r.abort.snapshot);
    u(r.faultsInjected); u(r.faultsRecovered); u(r.faultRetries);
}

bool
decodeResult(TokenReader &in, sim::RunResult &r)
{
    // Caps torn/corrupt length prefixes before they become allocations.
    constexpr std::uint64_t kMaxViolations = 1u << 20;

    r.cycles = in.u64(); r.epochs = in.u64();
    r.parallelEpochs = in.u64(); r.tasks = in.u64();
    r.reads = in.u64(); r.writes = in.u64();
    r.readHits = in.u64(); r.readMisses = in.u64();
    r.readMissRate = in.f64(); r.avgMissLatency = in.f64();
    r.missCold = in.u64(); r.missReplacement = in.u64();
    r.missTrueShare = in.u64(); r.missFalseShare = in.u64();
    r.missConservative = in.u64(); r.missTagReset = in.u64();
    r.missUncached = in.u64();
    r.timeReads = in.u64(); r.timeReadHits = in.u64();
    r.bypassReads = in.u64();
    r.readPackets = in.u64(); r.writePackets = in.u64();
    r.coherencePackets = in.u64(); r.writebackPackets = in.u64();
    r.readWords = in.u64(); r.writeWords = in.u64();
    r.writebackWords = in.u64();
    r.trafficPackets = in.u64(); r.trafficWords = in.u64();
    r.busyMax = in.u64(); r.busyAvg = in.f64();
    r.serialCycles = in.u64();
    r.oracleViolations = in.u64(); r.doallViolations = in.u64();

    std::uint64_t n = in.u64();
    if (!in.ok || n > kMaxViolations)
        return false;
    r.firstViolations.resize(n);
    for (sim::OracleViolation &v : r.firstViolations) {
        v.addr = in.u64();
        v.ref = static_cast<hir::RefId>(in.u64());
        v.seen = in.u64(); v.expected = in.u64();
        v.epoch = in.u64();
        v.proc = static_cast<ProcId>(in.u64());
    }
    r.shadowViolations = in.u64();
    n = in.u64();
    if (!in.ok || n > kMaxViolations)
        return false;
    r.firstShadowViolations.resize(n);
    for (sim::ShadowViolation &v : r.firstShadowViolations) {
        v.addr = in.u64();
        v.ref = static_cast<hir::RefId>(in.u64());
        v.proc = static_cast<ProcId>(in.u64());
        v.epoch = in.u64();
        v.writerProc = static_cast<ProcId>(in.u64());
        v.writerEpoch = in.u64();
    }
    r.abort.kind = static_cast<fault::AbortKind>(in.u64());
    r.abort.reason = in.str();
    r.abort.cycle = in.u64(); r.abort.epoch = in.u64();
    r.abort.proc = static_cast<std::uint32_t>(in.u64());
    r.abort.snapshot = in.str();
    r.faultsInjected = in.u64(); r.faultsRecovered = in.u64();
    r.faultRetries = in.u64();
    return in.ok;
}

std::string
journalHeader(const std::string &magic, std::uint64_t identity)
{
    return magic + ' ' + csprintf("%016x", identity);
}

void
writeResultCellJson(std::ostream &f, const sim::RunResult &r,
                    const std::string &error)
{
    using obs::jsonEscape;
    f << "      \"fingerprint\": \""
      << csprintf("%016x", r.fingerprint()) << "\",\n";
    f << "      \"cycles\": " << r.cycles << ",\n";
    f << "      \"epochs\": " << r.epochs << ",\n";
    f << "      \"parallel_epochs\": " << r.parallelEpochs << ",\n";
    f << "      \"tasks\": " << r.tasks << ",\n";
    f << "      \"reads\": " << r.reads << ",\n";
    f << "      \"writes\": " << r.writes << ",\n";
    f << "      \"read_hits\": " << r.readHits << ",\n";
    f << "      \"read_misses\": " << r.readMisses << ",\n";
    f << "      \"read_miss_rate\": "
      << csprintf("%.17g", r.readMissRate) << ",\n";
    f << "      \"avg_miss_latency\": "
      << csprintf("%.17g", r.avgMissLatency) << ",\n";
    f << "      \"miss_cold\": " << r.missCold << ",\n";
    f << "      \"miss_replacement\": " << r.missReplacement << ",\n";
    f << "      \"miss_true_share\": " << r.missTrueShare << ",\n";
    f << "      \"miss_false_share\": " << r.missFalseShare << ",\n";
    f << "      \"miss_conservative\": " << r.missConservative << ",\n";
    f << "      \"miss_tag_reset\": " << r.missTagReset << ",\n";
    f << "      \"miss_uncached\": " << r.missUncached << ",\n";
    f << "      \"time_reads\": " << r.timeReads << ",\n";
    f << "      \"time_read_hits\": " << r.timeReadHits << ",\n";
    f << "      \"bypass_reads\": " << r.bypassReads << ",\n";
    f << "      \"read_packets\": " << r.readPackets << ",\n";
    f << "      \"write_packets\": " << r.writePackets << ",\n";
    f << "      \"coherence_packets\": " << r.coherencePackets << ",\n";
    f << "      \"writeback_packets\": " << r.writebackPackets << ",\n";
    f << "      \"read_words\": " << r.readWords << ",\n";
    f << "      \"write_words\": " << r.writeWords << ",\n";
    f << "      \"writeback_words\": " << r.writebackWords << ",\n";
    f << "      \"traffic_packets\": " << r.trafficPackets << ",\n";
    f << "      \"traffic_words\": " << r.trafficWords << ",\n";
    f << "      \"busy_max\": " << r.busyMax << ",\n";
    f << "      \"busy_avg\": " << csprintf("%.17g", r.busyAvg) << ",\n";
    f << "      \"serial_cycles\": " << r.serialCycles << ",\n";
    f << "      \"oracle_violations\": " << r.oracleViolations << ",\n";
    f << "      \"doall_violations\": " << r.doallViolations;
    // Robustness fields are emitted only when present so fault-free
    // sweeps keep their historical byte-identical JSON.
    if (r.shadowViolations != 0)
        f << ",\n      \"shadow_violations\": " << r.shadowViolations;
    if (r.faultsInjected || r.faultsRecovered || r.faultRetries) {
        f << ",\n      \"faults_injected\": " << r.faultsInjected;
        f << ",\n      \"faults_recovered\": " << r.faultsRecovered;
        f << ",\n      \"fault_retries\": " << r.faultRetries;
    }
    if (r.aborted()) {
        f << ",\n      \"abort\": {\n";
        f << "        \"kind\": \"" << fault::abortKindName(r.abort.kind)
          << "\",\n";
        f << "        \"reason\": \"" << jsonEscape(r.abort.reason)
          << "\",\n";
        f << "        \"cycle\": " << r.abort.cycle << ",\n";
        f << "        \"epoch\": " << r.abort.epoch << ",\n";
        f << "        \"proc\": " << r.abort.proc << "\n";
        f << "      }";
    }
    if (!error.empty())
        f << ",\n      \"error\": \"" << jsonEscape(error) << "\"";
    // Wall-clock phase profile: only under --profile (timings are
    // machine-dependent, so byte-determinism contracts don't cover
    // profiled output).
    if (r.profile.any())
        f << ",\n      \"profile\": " << r.profile.json();
}

bool
parseJournalHeader(const std::string &line, const std::string &magic,
                   std::uint64_t &identity)
{
    // Exact prefix match: a header torn anywhere inside the magic is a
    // prefix of it, never equal to it.
    if (line.size() < magic.size() + 2)
        return false;
    if (line.compare(0, magic.size(), magic) != 0 ||
        line[magic.size()] != ' ')
        return false;
    const std::string id = line.substr(magic.size() + 1);
    // Exactly 16 hex digits and nothing after them: a torn identity
    // (fewer digits) or trailing junk is structurally invalid, so it
    // can never be misread as some other sweep's (shorter) identity.
    if (id.size() != 16)
        return false;
    for (char c : id)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    identity = std::strtoull(id.c_str(), nullptr, 16);
    return true;
}

} // namespace serve
} // namespace hscd
