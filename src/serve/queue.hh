/**
 * @file
 * Durable, admission-controlled campaign work queue.
 *
 * The queue is what makes the server crash-safe. Every campaign lives
 * in the state directory as up to three files keyed by its identity
 * hash:
 *
 *   <id>.req          the canonical submit request (written via
 *                     tmp-file + fsync + rename, so it is either whole
 *                     or absent - a kill -9 mid-write leaves a .tmp the
 *                     recovery scan ignores)
 *   <id>.journal      PR 4-format journal: strict identity header plus
 *                     one flushed record per completed cell (torn tail
 *                     tolerated, torn/foreign header refused)
 *   <id>.result.json  the final aggregate, atomically renamed into
 *                     place on completion
 *
 * The durability contract: the "accepted" response is sent only after
 * the .req file is durable, and a cell is counted done only after its
 * journal record is flushed. `kill -9` at *any* point therefore loses
 * at most in-flight cells, and recover() resumes the remainder; the
 * aggregate a resumed campaign renders is byte-identical to an
 * uninterrupted run's (RunResults travel bit-exactly through the
 * journal and cells are rendered in submission order).
 *
 * Admission control: a bounded number of queued cells and of resident
 * campaigns. Submissions past either bound are *shed* with a
 * structured 429-style response instead of growing memory - the
 * client's contract is to back off and resubmit (identity-keyed
 * dedup makes that idempotent).
 */

#ifndef HSCD_SERVE_QUEUE_HH
#define HSCD_SERVE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "sim/result.hh"

namespace hscd {
namespace serve {

/** Admission bounds (0 = a sane built-in default, never unlimited). */
struct QueueLimits
{
    std::size_t maxQueuedCells = 100000; ///< backpressure threshold
    std::size_t maxCampaignCells = 50000; ///< per-submission cap
    std::size_t maxCampaigns = 256;      ///< resident campaign cap
};

/** Monotonic counters for /stats (all guarded by the queue mutex). */
struct QueueCounters
{
    std::uint64_t submitted = 0;   ///< campaigns accepted
    std::uint64_t dedup = 0;       ///< resubmissions of a known id
    std::uint64_t shed = 0;        ///< submissions refused (backpressure)
    std::uint64_t rejected = 0;    ///< malformed submissions (400-style)
    std::uint64_t cellsRun = 0;    ///< cells executed by this process
    std::uint64_t cellsRestored = 0; ///< cells restored from journals
    std::uint64_t cellErrors = 0;  ///< cells that ended in harness error
    std::uint64_t completed = 0;   ///< campaigns fully finished
    std::uint64_t deadlineExpired = 0; ///< cells skipped past deadline
};

class CampaignQueue
{
  public:
    /**
     * Executes one cell; supplied by the embedding tool so the queue
     * stays independent of the bench harness. Must be thread-safe and
     * deterministic; may throw (the error becomes the cell's
     * structured error field).
     */
    using CellFn = std::function<sim::RunResult(const CampaignSpec &,
                                                std::size_t cellIndex)>;

    CampaignQueue(std::string stateDir, QueueLimits limits, CellFn runCell,
                  unsigned workers);
    ~CampaignQueue();

    CampaignQueue(const CampaignQueue &) = delete;
    CampaignQueue &operator=(const CampaignQueue &) = delete;

    /**
     * Scan the state directory and re-admit every durable campaign
     * (journaled results restored, remaining cells re-queued). Returns
     * the number of campaigns recovered. Call before serving.
     */
    std::size_t recover();

    struct Admission
    {
        enum class Status
        {
            Accepted, ///< durable; id identifies the campaign
            Dedup,    ///< identical campaign already resident
            Shed,     ///< backpressure: retry later (429-style)
        };
        Status status = Status::Shed;
        std::uint64_t id = 0;
        std::string error;       ///< reason when shed
        std::size_t queuedCells = 0;
    };

    /** Admit (or refuse) a validated submission. Thread-safe. */
    Admission submit(const CampaignSpec &spec);

    struct Status
    {
        bool known = false;
        bool complete = false;
        std::size_t done = 0;
        std::size_t total = 0;
        std::size_t errors = 0;
        std::string resultPath; ///< non-empty once complete
    };

    /** Progress of campaign @p id. Thread-safe. */
    Status status(std::uint64_t id) const;

    /**
     * Stop the workers. With @p drain the current in-flight cells
     * finish (and are journaled) first; queued cells stay durable for
     * the next process. Idempotent.
     */
    void shutdown(bool drain);

    /** Queued (not yet started) cells across all campaigns. */
    std::size_t depth() const;

    /** Resident campaigns (queued, running, or completed). */
    std::size_t campaignCount() const;

    /**
     * Cells not yet journaled across all incomplete campaigns. After a
     * drain this is the "interrupted with checkpoint" count that maps
     * to verify::ExitAbort (4) instead of 0.
     */
    std::size_t unfinishedCells() const;

    /** Count a malformed submission (for /stats). */
    void noteRejected();

    /** Copy of the monotonic counters. */
    QueueCounters counters() const;

    /** True once shutdown() has been requested. */
    bool draining() const;

    const std::string &stateDir() const { return _stateDir; }

    /** Provenance jobs field / aggregate "jobs" value. */
    unsigned workers() const { return _workers; }

  private:
    struct Campaign
    {
        CampaignSpec spec;
        std::uint64_t id = 0;
        std::vector<sim::RunResult> results;
        std::vector<std::string> errors;
        std::vector<char> have;    ///< cell recorded (journal-durable)
        std::vector<char> started; ///< cell claimed by a worker
        std::size_t done = 0;
        bool complete = false;
        std::ofstream journal;
        std::mutex journalMu;
        std::chrono::steady_clock::time_point admitted;
    };

    struct Work
    {
        std::shared_ptr<Campaign> campaign;
        std::size_t cell = 0;
    };

    std::string reqPath(std::uint64_t id) const;
    std::string journalPath(std::uint64_t id) const;
    std::string resultPath(std::uint64_t id) const;

    /** Load journaled cells into @p c; returns false on foreign file. */
    bool loadJournal(Campaign &c);
    /** Open the journal for append, writing the header if absent. */
    bool openJournal(Campaign &c, bool hasHeader);
    void enqueueRemaining(const std::shared_ptr<Campaign> &c);
    void recordOutcome(const std::shared_ptr<Campaign> &c,
                       std::size_t cell, const sim::RunResult &r,
                       const std::string &error, bool journalIt);
    void finishIfComplete(const std::shared_ptr<Campaign> &c);
    void writeAggregate(Campaign &c);
    void workerLoop();

    std::string _stateDir;
    QueueLimits _limits;
    CellFn _runCell;
    unsigned _workers;

    mutable std::mutex _mu;
    std::condition_variable _cv;
    std::map<std::uint64_t, std::shared_ptr<Campaign>> _campaigns;
    std::deque<Work> _queue;
    std::size_t _inFlight = 0;
    bool _stopping = false;
    QueueCounters _counters;
    std::vector<std::thread> _threads;
};

} // namespace serve
} // namespace hscd

#endif // HSCD_SERVE_QUEUE_HH
