/**
 * @file
 * The simulated multiprocessor: processors, caches, coherence scheme,
 * interconnect, memory, and the execution-driven engine that runs a
 * compiled program on them in global time order.
 */

#ifndef HSCD_SIM_MACHINE_HH
#define HSCD_SIM_MACHINE_HH

#include <memory>

#include "compiler/analysis.hh"
#include "fault/injector.hh"
#include "mem/coherence.hh"
#include "mem/memory.hh"
#include "network/kruskal_snir.hh"
#include "sim/result.hh"

namespace hscd {

namespace obs {
class MetricsRecorder;
class Timeline;
} // namespace obs

namespace sim {

class TraceSink;

class Machine
{
  public:
    /** @p cp must outlive the machine. */
    Machine(const compiler::CompiledProgram &cp, MachineConfig cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Record every scheme-visible event into @p sink during run(). */
    void setTraceSink(TraceSink *sink) { _trace = sink; }

    /**
     * Observability attachment points. All three default to null and
     * every hook is branch-guarded on the pointer, so an unobserved run
     * pays only a handful of null checks - the zero-overhead guard in
     * the obs test suite and the perf_smoke 2% gate enforce this.
     */
    /** Record epoch spans / protocol flows / instants during run(). */
    void setTimeline(obs::Timeline *tl) { _timeline = tl; }
    /** Sample counter snapshots per epoch / N cycles during run(). */
    void setMetrics(obs::MetricsRecorder *m) { _metrics = m; }
    /** Accumulate phase wall-clock into RunResult::profile. */
    void enableProfiling(bool on = true) { _profiled = on; }

    /** Execute the whole program; callable once. */
    RunResult run();

    const MachineConfig &config() const { return _cfg; }
    const mem::CoherenceScheme &scheme() const { return *_scheme; }
    const net::Network &network() const { return _network; }
    stats::StatGroup &statsRoot() { return _root; }
    /** Non-null iff the config's fault plan is enabled. */
    const fault::FaultInjector *faultInjector() const
    {
        return _faultInjector.get();
    }

  private:
    friend class Executor;

    const compiler::CompiledProgram &_cp;
    MachineConfig _cfg;
    stats::StatGroup _root;
    mem::MainMemory _memory;
    net::Network _network;
    std::unique_ptr<mem::CoherenceScheme> _scheme;
    std::unique_ptr<fault::FaultInjector> _faultInjector;
    TraceSink *_trace = nullptr;
    obs::Timeline *_timeline = nullptr;
    obs::MetricsRecorder *_metrics = nullptr;
    bool _profiled = false;
    bool _ran = false;
};

/**
 * Convenience: compile nothing, just run @p cp under @p cfg.
 *
 * Thread-safety: a Machine owns all of its mutable state (stats tree,
 * memory image, network model, migration RNG), so concurrent simulate()
 * calls on distinct Machines are independent - even over one shared,
 * immutable CompiledProgram. The sweep engine relies on this.
 */
RunResult simulate(const compiler::CompiledProgram &cp,
                   const MachineConfig &cfg);

} // namespace sim
} // namespace hscd

#endif // HSCD_SIM_MACHINE_HH
