/**
 * @file
 * Epoch-stream fast path: the program's reference sequences, compiled
 * once into flat per-processor streams.
 *
 * The execution-driven engine normally re-walks HIR statements for every
 * simulated reference (frame stack, environment lookups, subscript
 * expression trees). For a fixed (program, procs, schedule) the sequence
 * of operations each processor performs is deterministic, so it can be
 * recorded once - by the same TaskStream interpreter that the legacy
 * path uses - into a flat, cache-friendly stream and replayed on every
 * subsequent run. A StreamOp is the trace machinery's Access record
 * (sim/trace.hh) stripped of its run-time fields (stamp, clock,
 * criticality) and extended with the static compiler facts the executor
 * would otherwise look up per reference (mark kind, Time-Read distance,
 * critical-section marking); the executor patches the dynamic fields in
 * at issue time, exactly as the interpreted path computes them.
 *
 * The contract is strict equivalence: a fast-path run produces a
 * byte-identical RunResult to the interpreted run (enforced by
 * tests/test_fastpath_equiv.cc). Two program/config shapes make the
 * recorded stream timing-dependent and are therefore ineligible -
 * dynamic self-scheduling (iteration placement depends on completion
 * order) and Alternate-policy unknown branches inside DOALL bodies
 * (the shared alternation counter makes branch outcomes depend on the
 * cross-processor interleaving). Those fall back to the interpreter.
 *
 * Streams are cached on the CompiledProgram itself (keyed by the config
 * fields that shape the stream), so sweeps that re-simulate one workload
 * under many machine configurations pay for interpretation once.
 */

#ifndef HSCD_SIM_STREAM_HH
#define HSCD_SIM_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "compiler/analysis.hh"
#include "mem/machine_config.hh"

namespace hscd {
namespace sim {

/** One recorded operation of an epoch stream (32 bytes, flat). */
struct StreamOp
{
    enum class Kind : std::uint8_t
    {
        Ref,          ///< one memory reference
        Compute,      ///< burn aux cycles
        LockAcquire,  ///< enter the (single global) critical section
        LockRelease,  ///< leave the critical section
        Post,         ///< post synchronization flag aux
        Wait,         ///< block on synchronization flag aux
        CallBoundary, ///< procedure entry/return
        Barrier,      ///< master only: explicit epoch boundary
        BeginDoall,   ///< master only: run parallel epoch aux
        IterStart,    ///< task streams only: iteration aux begins
    };

    Addr addr = 0;                ///< Ref: word address
    std::int64_t aux = 0;         ///< cycles / flag / epoch index / iter
    hir::RefId ref = hir::invalidRef;
    std::uint32_t array = static_cast<std::uint32_t>(-1);
    std::uint32_t distance = 0;   ///< Ref (read): Time-Read operand
    compiler::MarkKind mark = compiler::MarkKind::Normal;
    Kind kind = Kind::Ref;
    bool write = false;
    /** Ref: the compiler marked this reference Critical. */
    bool markCritical = false;
};

/** One parallel epoch, pre-scheduled onto processors. */
struct EpochStream
{
    bool hasSync = false;             ///< body contains post/wait
    Counter taskCount = 0;            ///< DOALL iterations
    std::vector<std::vector<StreamOp>> perProc;
};

/** A whole program, flattened for one (procs, schedule) shape. */
struct StreamProgram
{
    /** Serial master ops; BeginDoall records index into epochs. */
    std::vector<StreamOp> master;
    std::vector<EpochStream> epochs;

    /** Total recorded ops (master plus every epoch stream). */
    std::size_t opCount() const;
};

/**
 * Can (program, cfg) take the fast path at all? False for dynamic
 * self-scheduling and for Alternate-policy branches reachable inside a
 * parallel loop body (see file comment). Independent of cfg.fastPath -
 * callers gate on the flag separately.
 */
bool streamEligible(const compiler::CompiledProgram &cp,
                    const MachineConfig &cfg);

/**
 * The stream for (cp, cfg), built on first use and cached on @p cp
 * (thread-safe, insert-once; bounded by an LRU byte budget per
 * program). Returns nullptr when the combination is ineligible or the
 * recording would exceed the hard size cap - callers must then use the
 * interpreted path.
 */
std::shared_ptr<const StreamProgram>
epochStream(const compiler::CompiledProgram &cp, const MachineConfig &cfg);

/**
 * Record a stream without consulting the cache (test hook; also the
 * cache's builder). Returns nullptr exactly when streamEligible is
 * false or the op cap is exceeded.
 */
std::shared_ptr<const StreamProgram>
buildStreamProgram(const compiler::CompiledProgram &cp,
                   const MachineConfig &cfg);

/** Does a DOALL body (transitively) contain post/wait? */
bool doallBodyHasSync(const hir::Program &prog, const hir::LoopStmt &loop);

/**
 * Process-wide StreamProgram cache telemetry, aggregated over every
 * program's per-CompiledProgram slot (monotonic; for /stats).
 */
struct StreamCacheStats
{
    std::uint64_t builds = 0;    ///< streams recorded fresh
    std::uint64_t hits = 0;      ///< served from a slot cache
    std::uint64_t evictions = 0; ///< shapes dropped past the op budget
};

StreamCacheStats streamCacheStats();

} // namespace sim
} // namespace hscd

#endif // HSCD_SIM_STREAM_HH
