#include "sim/machine.hh"

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "sim/interp.hh"
#include "sim/trace.hh"

namespace hscd {
namespace sim {

using compiler::MarkKind;
using mem::MemOp;
using mem::ValueStamp;

std::uint64_t
RunResult::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    auto mixd = [&](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    };
    mix(cycles); mix(epochs); mix(parallelEpochs); mix(tasks);
    mix(reads); mix(writes); mix(readHits); mix(readMisses);
    mixd(readMissRate); mixd(avgMissLatency);
    mix(missCold); mix(missReplacement); mix(missTrueShare);
    mix(missFalseShare); mix(missConservative); mix(missTagReset);
    mix(missUncached);
    mix(timeReads); mix(timeReadHits); mix(bypassReads);
    mix(readPackets); mix(writePackets); mix(coherencePackets);
    mix(writebackPackets); mix(readWords); mix(writeWords);
    mix(writebackWords); mix(trafficPackets); mix(trafficWords);
    mix(busyMax); mixd(busyAvg); mix(serialCycles);
    mix(oracleViolations); mix(doallViolations);
    mix(firstViolations.size());
    for (const OracleViolation &v : firstViolations) {
        mix(v.addr); mix(v.ref); mix(v.seen); mix(v.expected);
        mix(v.epoch); mix(v.proc);
    }
    mix(shadowViolations);
    mix(firstShadowViolations.size());
    for (const ShadowViolation &v : firstShadowViolations) {
        mix(v.addr); mix(v.ref); mix(v.proc); mix(v.epoch);
        mix(v.writerProc); mix(v.writerEpoch);
    }
    return h;
}

std::string
RunResult::summary() const
{
    return csprintf(
        "cycles=%d epochs=%d reads=%d writes=%d miss_rate=%.4f "
        "avg_miss_lat=%.1f traffic=%d oracle_violations=%d",
        cycles, epochs, reads, writes, readMissRate, avgMissLatency,
        trafficWords, oracleViolations);
}

/**
 * Execution engine: walks the program with a master serial stream and
 * interleaves parallel-epoch task streams in global time order.
 */
class Executor
{
  public:
    explicit Executor(Machine &m)
        : _m(m), _cfg(m._cfg), _prog(m._cp.program),
          _marking(m._cp.marking), _scheme(*m._scheme),
          _lastStamp(m._memory.words(), 0),
          _procTime(m._cfg.procs, 0),
          _busy(m._cfg.procs, 0),
          _rng(m._cfg.migrationSeed)
    {
        if (_cfg.shadowEpochCheck) {
            _shadowWriterProc.assign(m._memory.words(), 0);
            _shadowWriterEpoch.assign(m._memory.words(), 0);
        }
    }

    RunResult
    run()
    {
        RunCtx ctx;
        TaskStream master(_prog, ctx, _prog.main().body);
        while (true) {
            TaskOp op = master.next();
            if (op.kind == TaskOp::Kind::End)
                break;
            switch (op.kind) {
              case TaskOp::Kind::Ref:
                issueRef(_serialProc, op, -1);
                break;
              case TaskOp::Kind::Compute:
                _procTime[_serialProc] += op.cycles;
                break;
              case TaskOp::Kind::LockAcquire:
                _procTime[_serialProc] += _cfg.lockCycles;
                _inCritical[_serialProc] = true;
                break;
              case TaskOp::Kind::LockRelease:
                _inCritical[_serialProc] = false;
                break;
              case TaskOp::Kind::Post:
                // Release semantics: pending writes drain first.
                _procTime[_serialProc] =
                    std::max(_procTime[_serialProc],
                             _scheme.writeDrainTime(_serialProc));
                _serialPosted.insert(op.flag);
                break;
              case TaskOp::Kind::Wait:
                if (!_serialPosted.count(op.flag))
                    fatal("serial wait(%d) with no prior post: deadlock",
                          op.flag);
                _procTime[_serialProc] += _cfg.lockCycles;
                break;
              case TaskOp::Kind::CallBoundary:
                if (_cfg.flushAtCalls) {
                    _scheme.flushCache(_serialProc);
                    _procTime[_serialProc] += _cfg.callFlushCycles;
                }
                break;
              case TaskOp::Kind::Barrier:
                boundary();
                break;
              case TaskOp::Kind::BeginDoall:
                boundary();
                runParallel(op, master.env(), ctx);
                boundary();
                migrateSerialTask();
                break;
              case TaskOp::Kind::End:
                break;
            }
        }
        finish();
        return _res;
    }

  private:
    /**
     * The paper's Section 5 migration study: between epochs the serial
     * task may be rescheduled onto another processor. Sound only when the
     * program was compiled without the serial-affinity assumption; the
     * oracle flags the stale reads otherwise.
     */
    void
    migrateSerialTask()
    {
        if (_cfg.migrationRate <= 0.0 || _cfg.procs < 2)
            return;
        if (_rng.real() < _cfg.migrationRate) {
            _scheme.migrationDrain(_serialProc);
            ProcId next = static_cast<ProcId>(
                _rng.below(_cfg.procs - 1));
            if (next >= _serialProc)
                ++next;
            // The task resumes no earlier than where it left off.
            _procTime[next] =
                std::max(_procTime[next], _procTime[_serialProc]);
            _serialProc = next;
        }
    }

    void
    boundary()
    {
        Cycles t = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            t = std::max(t, _procTime[p]);
            t = std::max(t, _scheme.writeDrainTime(p));
        }
        t += _cfg.barrierCycles;
        ++_epoch;
        if (_m._trace)
            _m._trace->onBoundary(_epoch);
        t += _scheme.epochBoundary(_epoch);
        for (ProcId p = 0; p < _cfg.procs; ++p)
            _procTime[p] = t;
        _m._network.endWindow(t);
        _epochAccess.clear();
        _serialPosted.clear();
        ++_res.epochs;
    }

    void
    finish()
    {
        Cycles t = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            t = std::max(t, _procTime[p]);
            t = std::max(t, _scheme.writeDrainTime(p));
        }
        _m._network.endWindow(t);
        _res.cycles = t;

        const mem::SchemeStats &st = _scheme.stats();
        _res.reads = st.reads.value();
        _res.writes = st.writes.value();
        _res.readHits = st.readHits.value();
        _res.readMisses = st.readMisses.value();
        _res.readMissRate = _scheme.readMissRate();
        _res.avgMissLatency = st.missLatency.mean();
        _res.missCold = st.missCold.value();
        _res.missReplacement = st.missReplacement.value();
        _res.missTrueShare = st.missTrueShare.value();
        _res.missFalseShare = st.missFalseShare.value();
        _res.missConservative = st.missConservative.value();
        _res.missTagReset = st.missTagReset.value();
        _res.missUncached = st.missUncached.value();
        _res.timeReads = st.timeReads.value();
        _res.timeReadHits = st.timeReadHits.value();
        _res.bypassReads = st.bypassReads.value();
        _res.readPackets = st.readPackets.value();
        _res.writePackets = st.writePackets.value();
        _res.coherencePackets = st.coherencePackets.value();
        _res.writebackPackets = st.writebackPackets.value();
        _res.readWords = st.readWords.value();
        _res.writeWords = st.writeWords.value();
        _res.writebackWords = st.writebackWords.value();
        _res.trafficPackets = _m._network.totalPackets();
        _res.trafficWords = _m._network.totalWords();

        Cycles busy_sum = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            _res.busyMax = std::max(_res.busyMax, _busy[p]);
            busy_sum += _busy[p];
        }
        _res.busyAvg = double(busy_sum) / double(_cfg.procs);
        _res.serialCycles =
            _res.cycles > _parallelWall ? _res.cycles - _parallelWall : 0;
    }

    /** DOALL legality: cross-task same-word conflicts are data races. */
    void
    checkLegality(Addr addr, std::int64_t task, bool write, bool critical)
    {
        auto [it, inserted] = _epochAccess.try_emplace(
            addr / 4, AccessRec{task, write, critical});
        if (inserted)
            return;
        AccessRec &rec = it->second;
        // Post/wait epochs may pass data between tasks legally; ordering
        // correctness is still checked by the value-stamp oracle.
        if (!_syncEpoch && rec.task != task && (write || rec.wrote) &&
            !(critical && rec.critical))
            ++_res.doallViolations;
        rec.wrote |= write;
        rec.critical &= critical;
        if (rec.task != task)
            rec.task = task; // track the latest toucher
    }

    void
    issueRef(ProcId proc, const TaskOp &op, std::int64_t task)
    {
        const compiler::Mark &mark = _marking.mark(op.ref);
        bool critical = mark.reason == compiler::MarkReason::Critical ||
                        _inCritical[proc];
        checkLegality(op.addr, task, op.write, critical);

        MemOp mop;
        mop.proc = proc;
        mop.addr = op.addr;
        mop.write = op.write;
        mop.arrayId = op.array;
        // Lock- or sync-ordered epochs allow another task to write the
        // same word later in the epoch; TPI must not vouch for such
        // writes beyond EC - 1.
        mop.critical = _inCritical[proc] || _syncEpoch;
        mop.now = _procTime[proc];
        if (op.write) {
            mop.stamp = ++_stampCounter;
            _lastStamp[op.addr / 4] = mop.stamp;
            if (_cfg.shadowEpochCheck) {
                _shadowWriterProc[op.addr / 4] = proc;
                _shadowWriterEpoch[op.addr / 4] = _epoch;
            }
        } else {
            mop.mark = mark.kind;
            mop.distance = mark.distance;
        }

        if (_m._trace)
            _m._trace->onAccess(mop);
        mem::AccessResult res = _scheme.access(mop);
        _procTime[proc] += res.stall;

        if (!op.write) {
            ValueStamp expected = _lastStamp[op.addr / 4];
            if (res.observed != expected) {
                ++_res.oracleViolations;
                if (_res.firstViolations.size() < 8) {
                    _res.firstViolations.push_back(OracleViolation{
                        op.addr, op.ref, res.observed, expected, _epoch,
                        proc});
                }
            }
            // Shadow-epoch race detector: a genuine cache hit must
            // observe the freshest value ever written to the word; a
            // stale hit means the compiler's mark let a cached copy
            // satisfy a read the last writer should have invalidated.
            if (_cfg.shadowEpochCheck && res.hit &&
                res.observed != expected)
            {
                ++_res.shadowViolations;
                if (_res.firstShadowViolations.size() < 8) {
                    _res.firstShadowViolations.push_back(ShadowViolation{
                        op.addr, op.ref, proc, _epoch,
                        _shadowWriterProc[op.addr / 4],
                        _shadowWriterEpoch[op.addr / 4]});
                }
            }
        }
    }

    /** Does the DOALL body contain post/wait (memoized)? */
    bool
    doallHasSync(const hir::LoopStmt *loop)
    {
        auto it = _doallSync.find(loop);
        if (it != _doallSync.end())
            return it->second;
        std::function<bool(const hir::StmtList &)> scan =
            [&](const hir::StmtList &body) {
                for (const auto &s : body) {
                    switch (s->kind()) {
                      case hir::StmtKind::Sync:
                        return true;
                      case hir::StmtKind::Loop:
                        if (scan(static_cast<const hir::LoopStmt &>(*s)
                                     .body))
                            return true;
                        break;
                      case hir::StmtKind::IfUnknown: {
                        const auto &br =
                            static_cast<const hir::IfUnknownStmt &>(*s);
                        if (scan(br.thenBody) || scan(br.elseBody))
                            return true;
                        break;
                      }
                      case hir::StmtKind::Critical:
                        if (scan(static_cast<const hir::CriticalStmt &>(
                                     *s).body))
                            return true;
                        break;
                      case hir::StmtKind::Call:
                        if (scan(_prog.procedures()
                                     [static_cast<const hir::CallStmt &>(
                                          *s).callee].body))
                            return true;
                        break;
                      default:
                        break;
                    }
                }
                return false;
            };
        bool has = scan(loop->body);
        _doallSync[loop] = has;
        return has;
    }

    void
    runParallel(const TaskOp &doall, const hir::Env &outer, RunCtx &ctx)
    {
        ++_res.parallelEpochs;
        _syncEpoch = doallHasSync(doall.doall);
        const unsigned P = _cfg.procs;
        const Cycles epoch_start = _procTime[0]; // all equal post-barrier

        std::vector<std::unique_ptr<TaskStream>> streams;
        streams.reserve(P);
        for (unsigned p = 0; p < P; ++p)
            streams.push_back(std::make_unique<TaskStream>(
                _prog, ctx, *doall.doall, outer));

        // Iteration list.
        std::vector<std::int64_t> iters;
        for (std::int64_t i = doall.lo; i <= doall.hi; i += doall.step)
            iters.push_back(i);
        _res.tasks += iters.size();

        std::size_t next_dyn = 0;
        switch (_cfg.sched) {
          case SchedPolicy::Block: {
            std::size_t chunk = (iters.size() + P - 1) / P;
            for (unsigned p = 0; p < P; ++p) {
                std::size_t b = p * chunk;
                std::size_t e = std::min(iters.size(), b + chunk);
                for (std::size_t i = b; i < e; ++i)
                    streams[p]->addIteration(iters[i]);
            }
            break;
          }
          case SchedPolicy::Cyclic:
            for (std::size_t i = 0; i < iters.size(); ++i)
                streams[i % P]->addIteration(iters[i]);
            break;
          case SchedPolicy::Dynamic:
            for (unsigned p = 0; p < P && next_dyn < iters.size(); ++p)
                for (unsigned c = 0;
                     c < _cfg.dynamicChunk && next_dyn < iters.size(); ++c)
                    streams[p]->addIteration(iters[next_dyn++]);
            break;
        }

        // Global-time interleaving.
        using Entry = std::pair<Cycles, ProcId>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
        for (unsigned p = 0; p < P; ++p)
            pq.emplace(_procTime[p], p);

        ProcId lock_owner = invalidProc;
        unsigned lock_depth = 0;
        std::deque<ProcId> lock_waiters;
        std::map<std::int64_t, Cycles> posted;        // flag -> post time
        std::map<std::int64_t, std::vector<ProcId>> sync_waiters;
        std::size_t parked = 0;

        while (!pq.empty()) {
            auto [t, p] = pq.top();
            pq.pop();
            TaskOp op = streams[p]->next();
            switch (op.kind) {
              case TaskOp::Kind::Ref:
                issueRef(p, op, streams[p]->currentIteration());
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::Compute:
                _procTime[p] += op.cycles;
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::LockAcquire:
                if (lock_owner == p) {
                    // Re-entrant acquisition of the single global lock.
                    ++lock_depth;
                    pq.emplace(_procTime[p], p);
                } else if (lock_owner == invalidProc) {
                    lock_owner = p;
                    lock_depth = 1;
                    _inCritical[p] = true;
                    _procTime[p] += _cfg.lockCycles;
                    pq.emplace(_procTime[p], p);
                } else {
                    lock_waiters.push_back(p); // parked
                }
                break;
              case TaskOp::Kind::LockRelease: {
                hscd_assert(lock_owner == p, "release by non-owner");
                if (--lock_depth > 0) {
                    pq.emplace(_procTime[p], p);
                    break;
                }
                _inCritical[p] = false;
                lock_owner = invalidProc;
                if (!lock_waiters.empty()) {
                    ProcId q = lock_waiters.front();
                    lock_waiters.pop_front();
                    _procTime[q] =
                        std::max(_procTime[q], _procTime[p]) +
                        _cfg.lockCycles;
                    lock_owner = q;
                    lock_depth = 1;
                    _inCritical[q] = true;
                    pq.emplace(_procTime[q], q);
                }
                pq.emplace(_procTime[p], p);
                break;
              }
              case TaskOp::Kind::Post: {
                // Release: drain the poster's write buffer first.
                _procTime[p] =
                    std::max(_procTime[p], _scheme.writeDrainTime(p));
                posted.emplace(op.flag, _procTime[p]);
                auto wit = sync_waiters.find(op.flag);
                if (wit != sync_waiters.end()) {
                    for (ProcId q : wit->second) {
                        _procTime[q] =
                            std::max(_procTime[q], _procTime[p]) +
                            _cfg.lockCycles;
                        pq.emplace(_procTime[q], q);
                        --parked;
                    }
                    sync_waiters.erase(wit);
                }
                pq.emplace(_procTime[p], p);
                break;
              }
              case TaskOp::Kind::Wait: {
                auto pit = posted.find(op.flag);
                if (pit != posted.end()) {
                    _procTime[p] =
                        std::max(_procTime[p], pit->second) +
                        _cfg.lockCycles;
                    pq.emplace(_procTime[p], p);
                } else {
                    sync_waiters[op.flag].push_back(p);
                    ++parked;
                }
                break;
              }
              case TaskOp::Kind::CallBoundary:
                if (_cfg.flushAtCalls) {
                    _scheme.flushCache(p);
                    _procTime[p] += _cfg.callFlushCycles;
                }
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::End:
                if (_cfg.sched == SchedPolicy::Dynamic &&
                    next_dyn < iters.size())
                {
                    for (unsigned c = 0;
                         c < _cfg.dynamicChunk && next_dyn < iters.size();
                         ++c)
                        streams[p]->addIteration(iters[next_dyn++]);
                    pq.emplace(_procTime[p], p);
                }
                break;
              default:
                panic("unexpected op in a task stream");
            }
        }
        if (parked != 0)
            fatal("deadlock: %d processors waiting on never-posted "
                  "flags at the end of a parallel epoch", parked);
        hscd_assert(lock_owner == invalidProc && lock_waiters.empty(),
                    "deadlocked critical section at epoch end");
        _syncEpoch = false;

        Cycles wall = 0;
        for (unsigned p = 0; p < P; ++p) {
            _busy[p] += _procTime[p] - epoch_start;
            wall = std::max(wall, _procTime[p] - epoch_start);
        }
        _parallelWall += wall;
    }

    struct AccessRec
    {
        std::int64_t task;
        bool wrote;
        bool critical;
    };

    Machine &_m;
    const MachineConfig &_cfg;
    const hir::Program &_prog;
    const compiler::Marking &_marking;
    mem::CoherenceScheme &_scheme;

    std::vector<ValueStamp> _lastStamp;
    /** Shadow-epoch detector state (empty unless shadowEpochCheck). */
    std::vector<ProcId> _shadowWriterProc;
    std::vector<EpochId> _shadowWriterEpoch;
    ValueStamp _stampCounter = 0;
    std::vector<Cycles> _procTime;
    std::vector<Cycles> _busy;
    Cycles _parallelWall = 0;
    std::unordered_map<std::uint64_t, AccessRec> _epochAccess;
    std::unordered_map<ProcId, bool> _inCritical;
    std::set<std::int64_t> _serialPosted;
    std::map<const hir::LoopStmt *, bool> _doallSync;
    bool _syncEpoch = false;
    EpochId _epoch = 0;
    ProcId _serialProc = 0;
    Rng _rng;
    RunResult _res;
};

Machine::Machine(const compiler::CompiledProgram &cp, MachineConfig cfg)
    : _cp(cp), _cfg(std::move(cfg)), _root("machine"),
      _memory(cp.program.dataBytes()),
      _network(&_root, _cfg.procs, _cfg.networkRadix, _cfg.maxNetworkLoad,
               _cfg.topology),
      _scheme(mem::makeScheme(_cfg, _memory, _network, &_root))
{
    _cfg.validate();
}

Machine::~Machine() = default;

RunResult
Machine::run()
{
    hscd_assert(!_ran, "Machine::run() is single-shot");
    _ran = true;
    Executor ex(*this);
    return ex.run();
}

RunResult
simulate(const compiler::CompiledProgram &cp, const MachineConfig &cfg)
{
    Machine m(cp, cfg);
    return m.run();
}

} // namespace sim
} // namespace hscd
