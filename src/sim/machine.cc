#include "sim/machine.hh"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <utility>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "mem/base_scheme.hh"
#include "mem/directory_scheme.hh"
#include "mem/sc_scheme.hh"
#include "mem/tpi_scheme.hh"
#include "mem/vc_scheme.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/timeline.hh"
#include "sim/interp.hh"
#include "sim/stream.hh"
#include "sim/trace.hh"

namespace hscd {
namespace sim {

using compiler::MarkKind;
using mem::MemOp;
using mem::ValueStamp;

std::uint64_t
RunResult::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    auto mixd = [&](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    };
    mix(cycles); mix(epochs); mix(parallelEpochs); mix(tasks);
    mix(reads); mix(writes); mix(readHits); mix(readMisses);
    mixd(readMissRate); mixd(avgMissLatency);
    mix(missCold); mix(missReplacement); mix(missTrueShare);
    mix(missFalseShare); mix(missConservative); mix(missTagReset);
    mix(missUncached);
    mix(timeReads); mix(timeReadHits); mix(bypassReads);
    mix(readPackets); mix(writePackets); mix(coherencePackets);
    mix(writebackPackets); mix(readWords); mix(writeWords);
    mix(writebackWords); mix(trafficPackets); mix(trafficWords);
    mix(busyMax); mixd(busyAvg); mix(serialCycles);
    mix(oracleViolations); mix(doallViolations);
    mix(firstViolations.size());
    for (const OracleViolation &v : firstViolations) {
        mix(v.addr); mix(v.ref); mix(v.seen); mix(v.expected);
        mix(v.epoch); mix(v.proc);
    }
    mix(shadowViolations);
    mix(firstShadowViolations.size());
    for (const ShadowViolation &v : firstShadowViolations) {
        mix(v.addr); mix(v.ref); mix(v.proc); mix(v.epoch);
        mix(v.writerProc); mix(v.writerEpoch);
    }
    // Abort/fault fields perturb the digest only when set, so the
    // fingerprints of fault-free runs are unchanged by their existence.
    if (abort.aborted() || faultsInjected || faultsRecovered ||
        faultRetries)
    {
        auto mixs = [&](const std::string &s) {
            mix(s.size());
            for (char c : s)
                mix(static_cast<unsigned char>(c));
        };
        mix(static_cast<std::uint64_t>(abort.kind));
        mix(abort.cycle); mix(abort.epoch); mix(abort.proc);
        mixs(abort.reason);
        mixs(abort.snapshot);
        mix(faultsInjected); mix(faultsRecovered); mix(faultRetries);
    }
    return h;
}

std::string
RunResult::summary() const
{
    std::string s = csprintf(
        "cycles=%d epochs=%d reads=%d writes=%d miss_rate=%.4f "
        "avg_miss_lat=%.1f traffic=%d oracle_violations=%d",
        cycles, epochs, reads, writes, readMissRate, avgMissLatency,
        trafficWords, oracleViolations);
    if (faultsInjected || faultRetries)
        s += csprintf(" faults=%d recovered=%d retries=%d", faultsInjected,
                      faultsRecovered, faultRetries);
    if (aborted())
        s += csprintf(" ABORTED(%s: %s)", fault::abortKindName(abort.kind),
                      abort.reason);
    return s;
}

/**
 * Execution engine: walks the program with a master serial stream and
 * interleaves parallel-epoch task streams in global time order.
 *
 * Two sources can feed the engine. The interpreted path walks HIR
 * statements through TaskStream per reference; the epoch-stream fast
 * path (sim/stream.hh) replays a pre-recorded flat op stream instead.
 * Both funnel every operation through the same issueRef/merge/boundary
 * machinery, templated on the concrete coherence scheme so the
 * per-reference access call is direct rather than virtual; results are
 * byte-identical by construction (and enforced by the equivalence
 * tests).
 */
class Executor
{
  public:
    explicit Executor(Machine &m)
        : _m(m), _cfg(m._cfg), _prog(m._cp.program),
          _marking(m._cp.marking), _scheme(*m._scheme),
          _tl(m._timeline), _mx(m._metrics),
          _lastStamp(m._memory.words(), 0),
          _procTime(m._cfg.procs, 0),
          _busy(m._cfg.procs, 0),
          _epochAccess(m._memory.words()),
          _inCritical(m._cfg.procs, 0),
          _rng(m._cfg.migrationSeed)
    {
        if (_cfg.shadowEpochCheck) {
            _shadowWriterProc.assign(m._memory.words(), 0);
            _shadowWriterEpoch.assign(m._memory.words(), 0);
        }
    }

    RunResult
    run()
    {
        try {
            return dispatchByScheme();
        } catch (fault::RunAbort &ab) {
            // Structured termination: counters are harvested up to the
            // point of death, and the abort record (with its post-mortem
            // snapshot) rides along in the RunResult instead of the run
            // spinning forever or dying on an assert. The same path
            // serves the interpreter and the fast path - the abort is
            // thrown from machinery both share.
            finish();
            if (_tl)
                _tl->instant(obs::Timeline::InstantKind::Abort,
                             ab.info.proc, _epoch, ab.info.cycle,
                             static_cast<std::uint64_t>(ab.info.kind));
            _res.abort = std::move(ab.info);
            return _res;
        }
    }

  private:
    RunResult
    dispatchByScheme()
    {
        std::shared_ptr<const StreamProgram> sp;
        if (_cfg.fastPath) {
            obs::PhaseTimer t(_m._profiled ? &_res.profile.streamMs
                                           : nullptr);
            sp = epochStream(_m._cp, _cfg);
        }
        switch (_cfg.scheme) {
          case SchemeKind::Base:
            return dispatch(static_cast<mem::BaseScheme &>(_scheme), sp);
          case SchemeKind::SC:
            return dispatch(static_cast<mem::ScScheme &>(_scheme), sp);
          case SchemeKind::TPI:
            return dispatch(static_cast<mem::TpiScheme &>(_scheme), sp);
          case SchemeKind::HW:
            return dispatch(static_cast<mem::DirectoryScheme &>(_scheme),
                            sp);
          case SchemeKind::VC:
            return dispatch(static_cast<mem::VcScheme &>(_scheme), sp);
        }
        panic("unknown scheme kind");
    }

  private:
    /**
     * One operation as the engine consumes it: a TaskOp with the
     * compiler's per-reference facts (mark, distance, criticality)
     * already attached. The interpreted path fills those from the mark
     * table per reference; the fast path recorded them in the stream.
     */
    struct ExecOp
    {
        TaskOp::Kind kind = TaskOp::Kind::End;
        Addr addr = 0;
        bool write = false;
        bool markCritical = false;
        MarkKind mark = MarkKind::Normal;
        std::uint32_t distance = 0;
        hir::RefId ref = hir::invalidRef;
        hir::ArrayId array = hir::invalidArray;
        std::int64_t aux = 0;  ///< Compute cycles or sync flag
    };

    /** Replays one processor's recorded epoch stream as ExecOps. */
    class StreamCursor
    {
      public:
        explicit StreamCursor(const std::vector<StreamOp> *ops)
            : _ops(ops)
        {}

        /** Next record, or nullptr at end; tracks IterStart markers. */
        const StreamOp *
        next()
        {
            while (_idx < _ops->size()) {
                const StreamOp &r = (*_ops)[_idx++];
                if (r.kind == StreamOp::Kind::IterStart) {
                    _iter = r.aux;
                    continue;
                }
                return &r;
            }
            return nullptr;
        }

        /** Iteration of the record last returned (-1 before the first). */
        std::int64_t iter() const { return _iter; }

      private:
        const std::vector<StreamOp> *_ops;
        std::size_t _idx = 0;
        std::int64_t _iter = -1;
    };

    ExecOp
    toExec(const TaskOp &op) const
    {
        ExecOp e;
        e.kind = op.kind;
        switch (op.kind) {
          case TaskOp::Kind::Ref: {
            e.addr = op.addr;
            e.write = op.write;
            e.ref = op.ref;
            e.array = op.array;
            const compiler::Mark &mark = _marking.mark(op.ref);
            e.markCritical =
                mark.reason == compiler::MarkReason::Critical;
            if (!op.write) {
                e.mark = mark.kind;
                e.distance = mark.distance;
            }
            break;
          }
          case TaskOp::Kind::Compute:
            e.aux = static_cast<std::int64_t>(op.cycles);
            break;
          case TaskOp::Kind::Post:
          case TaskOp::Kind::Wait:
            e.aux = op.flag;
            break;
          default:
            break;
        }
        return e;
    }

    ExecOp
    toExec(const StreamOp &rec) const
    {
        ExecOp e;
        switch (rec.kind) {
          case StreamOp::Kind::Ref:
            e.kind = TaskOp::Kind::Ref;
            e.addr = rec.addr;
            e.write = rec.write;
            e.ref = rec.ref;
            e.array = rec.array;
            e.markCritical = rec.markCritical;
            e.mark = rec.mark;
            e.distance = rec.distance;
            break;
          case StreamOp::Kind::Compute:
            e.kind = TaskOp::Kind::Compute;
            e.aux = rec.aux;
            break;
          case StreamOp::Kind::LockAcquire:
            e.kind = TaskOp::Kind::LockAcquire;
            break;
          case StreamOp::Kind::LockRelease:
            e.kind = TaskOp::Kind::LockRelease;
            break;
          case StreamOp::Kind::Post:
            e.kind = TaskOp::Kind::Post;
            e.aux = rec.aux;
            break;
          case StreamOp::Kind::Wait:
            e.kind = TaskOp::Kind::Wait;
            e.aux = rec.aux;
            break;
          case StreamOp::Kind::CallBoundary:
            e.kind = TaskOp::Kind::CallBoundary;
            break;
          default:
            panic("stream record has no executor mapping");
        }
        return e;
    }

    template <class Scheme>
    RunResult
    dispatch(Scheme &scheme, const std::shared_ptr<const StreamProgram> &sp)
    {
        return sp ? runStream(scheme, *sp) : runInterp(scheme);
    }

    template <class Scheme>
    RunResult
    runInterp(Scheme &scheme)
    {
        RunCtx ctx;
        TaskStream master(_prog, ctx, _prog.main().body);
        while (true) {
            TaskOp op = master.next();
            if (op.kind == TaskOp::Kind::End)
                break;
            switch (op.kind) {
              case TaskOp::Kind::Ref:
                issueRef(scheme, _serialProc, toExec(op), -1);
                break;
              case TaskOp::Kind::Barrier:
                boundary();
                break;
              case TaskOp::Kind::BeginDoall:
                boundary();
                runParallelInterp(scheme, op, master.env(), ctx);
                boundary();
                migrateSerialTask();
                break;
              default:
                serialOp(op.kind, toExec(op).aux);
                break;
            }
        }
        finish();
        return _res;
    }

    template <class Scheme>
    RunResult
    runStream(Scheme &scheme, const StreamProgram &sp)
    {
        for (const StreamOp &rec : sp.master) {
            switch (rec.kind) {
              case StreamOp::Kind::Ref:
                issueRef(scheme, _serialProc, toExec(rec), -1);
                break;
              case StreamOp::Kind::Barrier:
                boundary();
                break;
              case StreamOp::Kind::BeginDoall:
                boundary();
                runParallelStream(
                    scheme,
                    sp.epochs[static_cast<std::size_t>(rec.aux)]);
                boundary();
                migrateSerialTask();
                break;
              default:
                serialOp(toExec(rec).kind, rec.aux);
                break;
            }
        }
        finish();
        return _res;
    }

    /** Serial-mode ops other than Ref/Barrier/BeginDoall. */
    void
    serialOp(TaskOp::Kind kind, std::int64_t aux)
    {
        switch (kind) {
          case TaskOp::Kind::Compute:
            _procTime[_serialProc] += static_cast<Cycles>(aux);
            break;
          case TaskOp::Kind::LockAcquire:
            _procTime[_serialProc] += _cfg.lockCycles;
            _inCritical[_serialProc] = 1;
            break;
          case TaskOp::Kind::LockRelease:
            _inCritical[_serialProc] = 0;
            break;
          case TaskOp::Kind::Post:
            // Release semantics: pending writes drain first.
            _procTime[_serialProc] =
                std::max(_procTime[_serialProc],
                         _scheme.writeDrainTime(_serialProc));
            _serialPosted.insert(aux);
            break;
          case TaskOp::Kind::Wait:
            if (!_serialPosted.count(aux))
                fatal("serial wait(%d) with no prior post: deadlock",
                      aux);
            _procTime[_serialProc] += _cfg.lockCycles;
            break;
          case TaskOp::Kind::CallBoundary:
            if (_cfg.flushAtCalls) {
                _scheme.flushCache(_serialProc);
                _procTime[_serialProc] += _cfg.callFlushCycles;
            }
            break;
          default:
            panic("unexpected op in the serial master stream");
        }
    }

    /**
     * The paper's Section 5 migration study: between epochs the serial
     * task may be rescheduled onto another processor. Sound only when the
     * program was compiled without the serial-affinity assumption; the
     * oracle flags the stale reads otherwise.
     */
    void
    migrateSerialTask()
    {
        if (_cfg.migrationRate <= 0.0 || _cfg.procs < 2)
            return;
        if (_rng.real() < _cfg.migrationRate) {
            _scheme.migrationDrain(_serialProc);
            ProcId next = static_cast<ProcId>(
                _rng.below(_cfg.procs - 1));
            if (next >= _serialProc)
                ++next;
            // The task resumes no earlier than where it left off.
            _procTime[next] =
                std::max(_procTime[next], _procTime[_serialProc]);
            _serialProc = next;
        }
    }

    void
    boundary()
    {
        Cycles t = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            t = std::max(t, _procTime[p]);
            t = std::max(t, _scheme.writeDrainTime(p));
        }
        if (_tl && !_spansEmitted && _procTime[_serialProc] > _epochStartT) {
            // Serial region of the closing epoch (parallel epochs emit
            // their spans in mergeEpoch).
            _tl->procSpan(_serialProc, _epoch, _epochStartT,
                          _procTime[_serialProc]);
        }
        _spansEmitted = false;
        t += _cfg.barrierCycles;
        ++_epoch;
        if (_m._trace)
            _m._trace->onBoundary(_epoch);
        const Cycles reset = _scheme.epochBoundary(_epoch);
        t += reset;
        if (_tl) {
            if (reset > 0) {
                _tl->resetWindow(_epoch, t - reset, reset);
                _tl->instant(obs::Timeline::InstantKind::TagReset,
                             obs::Timeline::memTrack(_cfg.procs), _epoch,
                             t - reset, _scheme.stats().tagResets.value());
            }
            if (_m._faultInjector) {
                const Counter n = _m._faultInjector->stats().totalInjected();
                if (n != _faultsSeen) {
                    _tl->instant(obs::Timeline::InstantKind::FaultInjected,
                                 obs::Timeline::memTrack(_cfg.procs),
                                 _epoch, t, n - _faultsSeen);
                    _faultsSeen = n;
                }
            }
        }
        for (ProcId p = 0; p < _cfg.procs; ++p)
            _procTime[p] = t;
        _m._network.endWindow(t);
        ++_accessGen; // invalidates every per-epoch access record
        _serialPosted.clear();
        ++_res.epochs;
        _epochStartT = t;
        if (_mx && _mx->dueEpoch(_epoch))
            _mx->record(sampleNow(t));
    }

    /** Snapshot the cumulative counters for a metrics row. */
    obs::MetricSample
    sampleNow(Cycles now) const
    {
        const mem::SchemeStats &st = _scheme.stats();
        obs::MetricSample s;
        s.epoch = _epoch;
        s.cycle = now;
        s.reads = st.reads.value();
        s.writes = st.writes.value();
        s.readMisses = st.readMisses.value();
        s.missCold = st.missCold.value();
        s.missReplacement = st.missReplacement.value();
        s.missTrueShare = st.missTrueShare.value();
        s.missFalseShare = st.missFalseShare.value();
        s.missConservative = st.missConservative.value();
        s.missTagReset = st.missTagReset.value();
        s.missUncached = st.missUncached.value();
        s.timeReads = st.timeReads.value();
        s.timeReadHits = st.timeReadHits.value();
        s.bypassReads = st.bypassReads.value();
        s.trafficPackets = _m._network.totalPackets();
        s.trafficWords = _m._network.totalWords();
        s.tagResets = st.tagResets.value();
        if (_m._faultInjector)
            s.faultsInjected = _m._faultInjector->stats().totalInjected();
        Cycles pending = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            const Cycles drain = _scheme.writeDrainTime(p);
            if (drain > now)
                pending += drain - now;
        }
        s.writePending = pending;
        s.networkLoad = _m._network.load();
        return s;
    }

    /**
     * Machine state at the point of death, for AbortInfo::snapshot:
     * per-processor clocks, epoch counter, sync/lock occupancy, protocol
     * state (scheme post-mortem), and network load.
     */
    std::string
    deathSnapshot(std::size_t parked, ProcId lock_owner,
                  std::size_t lock_waiters) const
    {
        std::string s = csprintf(
            "epoch %d, %d parked, lock owner %s (%d waiting)\n", _epoch,
            parked,
            lock_owner == invalidProc ? std::string("none")
                                      : csprintf("%d", lock_owner),
            lock_waiters);
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            s += csprintf("  proc %d: t=%d busy=%d drain=%d%s\n", p,
                          _procTime[p], _busy[p],
                          _scheme.writeDrainTime(p),
                          p == _serialProc ? " (serial)" : "");
        }
        s += _scheme.postMortem();
        s += csprintf("network: load %.3f, %d packets so far\n",
                      _m._network.load(), _m._network.totalPackets());
        return s;
    }

    [[noreturn]] void
    watchdogAbort(ProcId p, std::uint64_t stalled, std::size_t parked,
                  ProcId lock_owner, std::size_t lock_waiters)
    {
        fault::AbortInfo info;
        info.kind = fault::AbortKind::Watchdog;
        info.reason = csprintf(
            "no forward progress in %d operations (livelock?)", stalled);
        info.cycle = _procTime[p];
        info.epoch = _epoch;
        info.proc = p;
        info.snapshot = deathSnapshot(parked, lock_owner, lock_waiters);
        throw fault::RunAbort(std::move(info));
    }

    void
    finish()
    {
        Cycles t = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            t = std::max(t, _procTime[p]);
            t = std::max(t, _scheme.writeDrainTime(p));
        }
        _m._network.endWindow(t);
        _res.cycles = t;

        if (_tl && !_spansEmitted && _procTime[_serialProc] > _epochStartT) {
            // Trailing serial region (the program ends without a final
            // barrier).
            _tl->procSpan(_serialProc, _epoch, _epochStartT,
                          _procTime[_serialProc]);
        }

        const mem::SchemeStats &st = _scheme.stats();
        _res.reads = st.reads.value();
        _res.writes = st.writes.value();
        _res.readHits = st.readHits.value();
        _res.readMisses = st.readMisses.value();
        _res.readMissRate = _scheme.readMissRate();
        _res.avgMissLatency = st.missLatency.mean();
        _res.missCold = st.missCold.value();
        _res.missReplacement = st.missReplacement.value();
        _res.missTrueShare = st.missTrueShare.value();
        _res.missFalseShare = st.missFalseShare.value();
        _res.missConservative = st.missConservative.value();
        _res.missTagReset = st.missTagReset.value();
        _res.missUncached = st.missUncached.value();
        _res.timeReads = st.timeReads.value();
        _res.timeReadHits = st.timeReadHits.value();
        _res.bypassReads = st.bypassReads.value();
        _res.readPackets = st.readPackets.value();
        _res.writePackets = st.writePackets.value();
        _res.coherencePackets = st.coherencePackets.value();
        _res.writebackPackets = st.writebackPackets.value();
        _res.readWords = st.readWords.value();
        _res.writeWords = st.writeWords.value();
        _res.writebackWords = st.writebackWords.value();
        _res.trafficPackets = _m._network.totalPackets();
        _res.trafficWords = _m._network.totalWords();

        Cycles busy_sum = 0;
        for (ProcId p = 0; p < _cfg.procs; ++p) {
            _res.busyMax = std::max(_res.busyMax, _busy[p]);
            busy_sum += _busy[p];
        }
        _res.busyAvg = double(busy_sum) / double(_cfg.procs);
        _res.serialCycles =
            _res.cycles > _parallelWall ? _res.cycles - _parallelWall : 0;

        if (const fault::FaultInjector *inj = _m._faultInjector.get()) {
            const fault::FaultStats &fs = inj->stats();
            _res.faultsInjected = fs.totalInjected();
            _res.faultsRecovered = fs.recovered;
            _res.faultRetries = fs.retries;
        }
    }

    /** DOALL legality: cross-task same-word conflicts are data races. */
    void
    checkLegality(Addr addr, std::int64_t task, bool write, bool critical)
    {
        hscd_dassert(addr / 4 < _epochAccess.size(),
                     "access record for address %#x out of range", addr);
        AccessRec &rec = _epochAccess[addr / 4];
        if (rec.gen != _accessGen) {
            rec.gen = _accessGen;
            rec.task = task;
            rec.wrote = write;
            rec.critical = critical;
            return;
        }
        // Post/wait epochs may pass data between tasks legally; ordering
        // correctness is still checked by the value-stamp oracle.
        if (!_syncEpoch && rec.task != task && (write || rec.wrote) &&
            !(critical && rec.critical))
            ++_res.doallViolations;
        rec.wrote |= write;
        rec.critical &= critical;
        if (rec.task != task)
            rec.task = task; // track the latest toucher
    }

    template <class Scheme>
    void
    issueRef(Scheme &scheme, ProcId proc, const ExecOp &op,
             std::int64_t task)
    {
        bool critical = op.markCritical || _inCritical[proc] != 0;
        checkLegality(op.addr, task, op.write, critical);

        MemOp mop;
        mop.proc = proc;
        mop.addr = op.addr;
        mop.write = op.write;
        mop.arrayId = op.array;
        // Lock- or sync-ordered epochs allow another task to write the
        // same word later in the epoch; TPI must not vouch for such
        // writes beyond EC - 1.
        mop.critical = _inCritical[proc] != 0 || _syncEpoch;
        mop.now = _procTime[proc];
        if (op.write) {
            mop.stamp = ++_stampCounter;
            _lastStamp[op.addr / 4] = mop.stamp;
            if (_cfg.shadowEpochCheck) {
                _shadowWriterProc[op.addr / 4] = proc;
                _shadowWriterEpoch[op.addr / 4] = _epoch;
            }
        } else {
            mop.mark = op.mark;
            mop.distance = op.distance;
        }

        if (_m._trace)
            _m._trace->onAccess(mop);
        mem::AccessResult res = scheme.access(mop);
        _procTime[proc] += res.stall;

        if (_m._trace)
            _m._trace->onOutcome(mop, res, _epoch);
        if (_tl && !res.hit && res.cls != mem::MissClass::None) {
            _tl->missFlow(proc, _epoch, mop.addr, mop.now, res.stall,
                          static_cast<std::uint8_t>(res.cls),
                          static_cast<std::uint8_t>(mop.mark),
                          mop.distance);
        }
        if (_mx && _mx->dueCycle(_procTime[proc]))
            _mx->record(sampleNow(_procTime[proc]));

        if (!op.write) {
            ValueStamp expected = _lastStamp[op.addr / 4];
            if (res.observed != expected) {
                ++_res.oracleViolations;
                if (_res.firstViolations.size() < 8) {
                    _res.firstViolations.push_back(OracleViolation{
                        op.addr, op.ref, res.observed, expected, _epoch,
                        proc});
                }
            }
            // Shadow-epoch race detector: a genuine cache hit must
            // observe the freshest value ever written to the word; a
            // stale hit means the compiler's mark let a cached copy
            // satisfy a read the last writer should have invalidated.
            if (_cfg.shadowEpochCheck && res.hit &&
                res.observed != expected)
            {
                ++_res.shadowViolations;
                if (_res.firstShadowViolations.size() < 8) {
                    _res.firstShadowViolations.push_back(ShadowViolation{
                        op.addr, op.ref, proc, _epoch,
                        _shadowWriterProc[op.addr / 4],
                        _shadowWriterEpoch[op.addr / 4]});
                }
            }
        }
    }

    /** Does the DOALL body contain post/wait (memoized)? */
    bool
    doallHasSync(const hir::LoopStmt *loop)
    {
        auto it = _doallSync.find(loop);
        if (it != _doallSync.end())
            return it->second;
        bool has = doallBodyHasSync(_prog, *loop);
        _doallSync[loop] = has;
        return has;
    }

    template <class Scheme>
    void
    runParallelInterp(Scheme &scheme, const TaskOp &doall,
                      const hir::Env &outer, RunCtx &ctx)
    {
        ++_res.parallelEpochs;
        _syncEpoch = doallHasSync(doall.doall);
        const unsigned P = _cfg.procs;

        std::vector<std::unique_ptr<TaskStream>> streams;
        streams.reserve(P);
        for (unsigned p = 0; p < P; ++p)
            streams.push_back(std::make_unique<TaskStream>(
                _prog, ctx, *doall.doall, outer));

        // Iteration list.
        std::vector<std::int64_t> iters;
        for (std::int64_t i = doall.lo; i <= doall.hi; i += doall.step)
            iters.push_back(i);
        _res.tasks += iters.size();

        std::size_t next_dyn = 0;
        switch (_cfg.sched) {
          case SchedPolicy::Block: {
            std::size_t chunk = (iters.size() + P - 1) / P;
            for (unsigned p = 0; p < P; ++p) {
                std::size_t b = p * chunk;
                std::size_t e = std::min(iters.size(), b + chunk);
                for (std::size_t i = b; i < e; ++i)
                    streams[p]->addIteration(iters[i]);
            }
            break;
          }
          case SchedPolicy::Cyclic:
            for (std::size_t i = 0; i < iters.size(); ++i)
                streams[i % P]->addIteration(iters[i]);
            break;
          case SchedPolicy::Dynamic:
            for (unsigned p = 0; p < P && next_dyn < iters.size(); ++p)
                for (unsigned c = 0;
                     c < _cfg.dynamicChunk && next_dyn < iters.size(); ++c)
                    streams[p]->addIteration(iters[next_dyn++]);
            break;
        }

        mergeEpoch(
            scheme,
            [&](ProcId p) { return toExec(streams[p]->next()); },
            [&](ProcId p) { return streams[p]->currentIteration(); },
            [&](ProcId p) {
                if (_cfg.sched == SchedPolicy::Dynamic &&
                    next_dyn < iters.size())
                {
                    for (unsigned c = 0;
                         c < _cfg.dynamicChunk && next_dyn < iters.size();
                         ++c)
                        streams[p]->addIteration(iters[next_dyn++]);
                    return true;
                }
                return false;
            });
    }

    template <class Scheme>
    void
    runParallelStream(Scheme &scheme, const EpochStream &ep)
    {
        ++_res.parallelEpochs;
        _syncEpoch = ep.hasSync;
        _res.tasks += ep.taskCount;
        const unsigned P = _cfg.procs;
        hscd_dassert(ep.perProc.size() == P,
                     "stream recorded for a different processor count");

        std::vector<StreamCursor> cursors;
        cursors.reserve(P);
        for (unsigned p = 0; p < P; ++p)
            cursors.emplace_back(&ep.perProc[p]);

        mergeEpoch(
            scheme,
            [&](ProcId p) {
                const StreamOp *r = cursors[p].next();
                return r ? toExec(*r) : ExecOp{};
            },
            [&](ProcId p) { return cursors[p].iter(); },
            [](ProcId) { return false; });
    }

    /**
     * Global-time interleaving of one parallel epoch. @p nextOp yields
     * the next operation of processor p's task stream, @p iterOf its
     * current iteration (the legality checker's task id), and @p onEnd
     * runs when a stream is exhausted, returning true to re-queue the
     * processor (dynamic self-scheduling refill).
     */
    template <class Scheme, class NextFn, class IterFn, class EndFn>
    void
    mergeEpoch(Scheme &scheme, NextFn &&nextOp, IterFn &&iterOf,
               EndFn &&onEnd)
    {
        const unsigned P = _cfg.procs;
        const Cycles epoch_start = _procTime[0]; // all equal post-barrier

        using Entry = std::pair<Cycles, ProcId>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
        for (unsigned p = 0; p < P; ++p)
            pq.emplace(_procTime[p], p);

        ProcId lock_owner = invalidProc;
        unsigned lock_depth = 0;
        std::deque<ProcId> lock_waiters;
        std::map<std::int64_t, Cycles> posted;        // flag -> post time
        std::map<std::int64_t, std::vector<ProcId>> sync_waiters;
        std::size_t parked = 0;

        // Watchdog: if this many consecutive operations complete without
        // any processor's clock moving, the epoch is livelocked (e.g. a
        // zero-cost self-scheduling refill loop) and the run dies with a
        // post-mortem instead of spinning.
        const std::uint64_t watchdog = _cfg.watchdogStallOps;
        std::uint64_t stalled_ops = 0;

        while (!pq.empty()) {
            auto [t, p] = pq.top();
            pq.pop();
            const Cycles t_before = _procTime[p];
            ExecOp op = nextOp(p);
            switch (op.kind) {
              case TaskOp::Kind::Ref:
                issueRef(scheme, p, op, iterOf(p));
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::Compute:
                _procTime[p] += static_cast<Cycles>(op.aux);
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::LockAcquire:
                if (lock_owner == p) {
                    // Re-entrant acquisition of the single global lock.
                    ++lock_depth;
                    pq.emplace(_procTime[p], p);
                } else if (lock_owner == invalidProc) {
                    lock_owner = p;
                    lock_depth = 1;
                    _inCritical[p] = 1;
                    _procTime[p] += _cfg.lockCycles;
                    pq.emplace(_procTime[p], p);
                } else {
                    lock_waiters.push_back(p); // parked
                }
                break;
              case TaskOp::Kind::LockRelease: {
                hscd_assert(lock_owner == p, "release by non-owner");
                if (--lock_depth > 0) {
                    pq.emplace(_procTime[p], p);
                    break;
                }
                _inCritical[p] = 0;
                lock_owner = invalidProc;
                if (!lock_waiters.empty()) {
                    ProcId q = lock_waiters.front();
                    lock_waiters.pop_front();
                    _procTime[q] =
                        std::max(_procTime[q], _procTime[p]) +
                        _cfg.lockCycles;
                    lock_owner = q;
                    lock_depth = 1;
                    _inCritical[q] = 1;
                    pq.emplace(_procTime[q], q);
                }
                pq.emplace(_procTime[p], p);
                break;
              }
              case TaskOp::Kind::Post: {
                // Release: drain the poster's write buffer first.
                _procTime[p] =
                    std::max(_procTime[p], _scheme.writeDrainTime(p));
                posted.emplace(op.aux, _procTime[p]);
                auto wit = sync_waiters.find(op.aux);
                if (wit != sync_waiters.end()) {
                    for (ProcId q : wit->second) {
                        _procTime[q] =
                            std::max(_procTime[q], _procTime[p]) +
                            _cfg.lockCycles;
                        pq.emplace(_procTime[q], q);
                        --parked;
                    }
                    sync_waiters.erase(wit);
                }
                pq.emplace(_procTime[p], p);
                break;
              }
              case TaskOp::Kind::Wait: {
                auto pit = posted.find(op.aux);
                if (pit != posted.end()) {
                    _procTime[p] =
                        std::max(_procTime[p], pit->second) +
                        _cfg.lockCycles;
                    pq.emplace(_procTime[p], p);
                } else {
                    sync_waiters[op.aux].push_back(p);
                    ++parked;
                }
                break;
              }
              case TaskOp::Kind::CallBoundary:
                if (_cfg.flushAtCalls) {
                    _scheme.flushCache(p);
                    _procTime[p] += _cfg.callFlushCycles;
                }
                pq.emplace(_procTime[p], p);
                break;
              case TaskOp::Kind::End:
                if (onEnd(p))
                    pq.emplace(_procTime[p], p);
                break;
              default:
                panic("unexpected op in a task stream");
            }
            if (_procTime[p] != t_before)
                stalled_ops = 0;
            else if (watchdog && ++stalled_ops >= watchdog)
                watchdogAbort(p, stalled_ops, parked, lock_owner,
                              lock_waiters.size());
        }
        if (parked != 0) {
            if (_m._faultInjector) {
                // Under fault injection a never-posted flag is one of
                // the failures the campaign wants recorded, not a user
                // error: die structured, with the sync state attached.
                fault::AbortInfo info;
                info.kind = fault::AbortKind::Deadlock;
                info.reason = csprintf(
                    "%d processors waiting on never-posted flags at the "
                    "end of a parallel epoch", parked);
                info.epoch = _epoch;
                info.proc = sync_waiters.empty()
                                ? 0
                                : sync_waiters.begin()->second.front();
                info.cycle = _procTime[info.proc];
                info.snapshot = deathSnapshot(parked, lock_owner,
                                              lock_waiters.size());
                throw fault::RunAbort(std::move(info));
            }
            fatal("deadlock: %d processors waiting on never-posted "
                  "flags at the end of a parallel epoch", parked);
        }
        hscd_assert(lock_owner == invalidProc && lock_waiters.empty(),
                    "deadlocked critical section at epoch end");
        _syncEpoch = false;

        Cycles wall = 0;
        for (unsigned p = 0; p < P; ++p) {
            _busy[p] += _procTime[p] - epoch_start;
            wall = std::max(wall, _procTime[p] - epoch_start);
        }
        _parallelWall += wall;

        if (_tl) {
            for (unsigned p = 0; p < P; ++p)
                if (_procTime[p] > epoch_start)
                    _tl->procSpan(p, _epoch, epoch_start, _procTime[p]);
            _spansEmitted = true;
        }
    }

    struct AccessRec
    {
        std::int64_t task = 0;
        std::uint64_t gen = 0;  ///< epoch generation tag (0 = never)
        bool wrote = false;
        bool critical = false;
    };

    Machine &_m;
    const MachineConfig &_cfg;
    const hir::Program &_prog;
    const compiler::Marking &_marking;
    mem::CoherenceScheme &_scheme;
    /** Observability recorders (null = hooks compile to a null check). */
    obs::Timeline *_tl;
    obs::MetricsRecorder *_mx;
    Cycles _epochStartT = 0;
    Counter _faultsSeen = 0;
    bool _spansEmitted = false;

    std::vector<ValueStamp> _lastStamp;
    /** Shadow-epoch detector state (empty unless shadowEpochCheck). */
    std::vector<ProcId> _shadowWriterProc;
    std::vector<EpochId> _shadowWriterEpoch;
    ValueStamp _stampCounter = 0;
    std::vector<Cycles> _procTime;
    std::vector<Cycles> _busy;
    Cycles _parallelWall = 0;
    /**
     * Per-epoch access records, flat-indexed by word with a generation
     * tag instead of a hash map keyed by address: the legality check
     * runs once per simulated reference, and bumping the generation at
     * each boundary replaces the per-epoch clear.
     */
    std::vector<AccessRec> _epochAccess;
    std::uint64_t _accessGen = 1;
    std::vector<char> _inCritical;
    std::set<std::int64_t> _serialPosted;
    std::map<const hir::LoopStmt *, bool> _doallSync;
    bool _syncEpoch = false;
    EpochId _epoch = 0;
    ProcId _serialProc = 0;
    Rng _rng;
    RunResult _res;
};

Machine::Machine(const compiler::CompiledProgram &cp, MachineConfig cfg)
    : _cp(cp), _cfg(std::move(cfg)), _root("machine"),
      _memory(cp.program.dataBytes()),
      _network(&_root, _cfg.procs, _cfg.networkRadix, _cfg.maxNetworkLoad,
               _cfg.topology),
      _scheme(mem::makeScheme(_cfg, _memory, _network, &_root))
{
    _cfg.validate();
    if (_cfg.fault.enabled()) {
        _faultInjector = std::make_unique<fault::FaultInjector>(_cfg.fault);
        _network.setFaultInjector(_faultInjector.get());
        _scheme->setFaultInjector(_faultInjector.get());
    }
}

Machine::~Machine() = default;

RunResult
Machine::run()
{
    hscd_assert(!_ran, "Machine::run() is single-shot");
    _ran = true;
    Executor ex(*this);
    if (!_profiled)
        return ex.run();
    const double t0 = obs::nowMs();
    RunResult res = ex.run();
    // execMs includes the stream build; profile.streamMs reports the
    // build's share separately.
    res.profile.execMs += obs::nowMs() - t0;
    res.profile.rssPeakKb = obs::currentRssPeakKb();
    return res;
}

RunResult
simulate(const compiler::CompiledProgram &cp, const MachineConfig &cfg)
{
    Machine m(cp, cfg);
    return m.run();
}

} // namespace sim
} // namespace hscd
