#include "sim/interp.hh"

#include "common/log.hh"

namespace hscd {
namespace sim {

using hir::ArrayRefStmt;
using hir::CallStmt;
using hir::ComputeStmt;
using hir::CriticalStmt;
using hir::IfUnknownStmt;
using hir::IntExpr;
using hir::LoopStmt;
using hir::Program;
using hir::StmtKind;
using hir::StmtList;
using hir::TakePolicy;

TaskStream::TaskStream(const Program &prog, RunCtx &ctx,
                       const StmtList &body)
    : _prog(prog), _ctx(ctx)
{
    for (const auto &[name, value] : prog.params().vars())
        _env.bind(name, value);
    push(body);
}

TaskStream::TaskStream(const Program &prog, RunCtx &ctx,
                       const LoopStmt &doall, hir::Env outer_env)
    : _prog(prog), _ctx(ctx), _env(std::move(outer_env)), _taskMode(true),
      _doall(&doall)
{
}

void
TaskStream::addIterations(std::int64_t lo, std::int64_t hi,
                          std::int64_t step)
{
    for (std::int64_t i = lo; i <= hi; i += step)
        _pending.push_back(i);
}

void
TaskStream::addIteration(std::int64_t iter)
{
    _pending.push_back(iter);
}

std::int64_t
TaskStream::evalClamped(const IntExpr &e) const
{
    return e.eval(_env);
}

Addr
TaskStream::refAddr(const ArrayRefStmt &ref) const
{
    const hir::ArrayDecl &decl = _prog.array(ref.array);
    std::vector<std::int64_t> idx(ref.subs.size());
    for (std::size_t d = 0; d < ref.subs.size(); ++d) {
        const IntExpr &e = ref.subs[d];
        std::int64_t dim = decl.dims[d];
        std::int64_t v = e.eval(_env, e.hasUnknown() ? dim : 0);
        if (e.hasUnknown())
            v = ((v % dim) + dim) % dim;
        idx[d] = v;
    }
    return _prog.elementAddr(ref.array, idx);
}

void
TaskStream::push(const StmtList &list)
{
    Frame f;
    f.list = &list;
    _frames.push_back(std::move(f));
}

void
TaskStream::pushLoop(const LoopStmt &loop)
{
    std::int64_t lo = evalClamped(loop.lo);
    std::int64_t hi = evalClamped(loop.hi);
    if (lo > hi)
        return;
    Frame f;
    f.list = &loop.body;
    f.loop = &loop;
    f.cur = lo;
    f.hi = hi;
    auto prev = _env.lookup(loop.var);
    f.hadPrev = prev.has_value();
    f.prevValue = prev.value_or(0);
    _env.bind(loop.var, lo);
    _frames.push_back(std::move(f));
}

void
TaskStream::popFrame()
{
    Frame &f = _frames.back();
    if (f.loop) {
        if (f.hadPrev)
            _env.bind(f.loop->var, f.prevValue);
        else
            _env.unbind(f.loop->var);
    }
    _frames.pop_back();
}

bool
TaskStream::evalBranch(const IfUnknownStmt &br)
{
    switch (br.policy) {
      case TakePolicy::Always:
        return true;
      case TakePolicy::Never:
        return false;
      case TakePolicy::Alternate:
        return (_ctx.ifCounters[br.id]++ % 2) == 0;
      case TakePolicy::Hash:
        return ((_env.mixHash(_ctx.hashSeed + br.id) >> 7) & 1) != 0;
    }
    return true;
}

TaskOp
TaskStream::next()
{
    while (true) {
        if (_frames.empty()) {
            if (!_taskMode) {
                TaskOp op;
                op.kind = TaskOp::Kind::End;
                return op;
            }
            // Task mode: advance to the next queued iteration.
            if (_varBound) {
                // restore nothing: the variable is rebound per iteration
            }
            if (_nextIter >= _pending.size()) {
                TaskOp op;
                op.kind = TaskOp::Kind::End;
                return op;
            }
            _currentIter = _pending[_nextIter++];
            _env.bind(_doall->var, _currentIter);
            _varBound = true;
            push(_doall->body);
            continue;
        }

        Frame &f = _frames.back();
        if (f.idx >= f.list->size()) {
            if (f.loop) {
                f.cur += f.loop->step;
                if (f.cur <= f.hi) {
                    f.idx = 0;
                    _env.bind(f.loop->var, f.cur);
                    continue;
                }
            }
            bool release = f.releaseLockOnPop;
            bool call_ret = f.callBoundaryOnPop;
            popFrame();
            if (release) {
                TaskOp op;
                op.kind = TaskOp::Kind::LockRelease;
                return op;
            }
            if (call_ret) {
                TaskOp op;
                op.kind = TaskOp::Kind::CallBoundary;
                return op;
            }
            continue;
        }

        const hir::Stmt &s = *(*f.list)[f.idx];
        switch (s.kind()) {
          case StmtKind::ArrayRef: {
            const auto &r = static_cast<const ArrayRefStmt &>(s);
            ++f.idx;
            TaskOp op;
            op.kind = TaskOp::Kind::Ref;
            op.addr = refAddr(r);
            op.write = r.isWrite;
            op.ref = r.id;
            op.array = r.array;
            return op;
          }
          case StmtKind::Compute: {
            const auto &c = static_cast<const ComputeStmt &>(s);
            ++f.idx;
            TaskOp op;
            op.kind = TaskOp::Kind::Compute;
            op.cycles = c.cycles;
            return op;
          }
          case StmtKind::Loop: {
            const auto &l = static_cast<const LoopStmt &>(s);
            if (l.parallel && !_taskMode) {
                ++f.idx; // resume after the DOALL when we return
                TaskOp op;
                op.kind = TaskOp::Kind::BeginDoall;
                op.doall = &l;
                op.lo = evalClamped(l.lo);
                op.hi = evalClamped(l.hi);
                op.step = l.step;
                return op;
            }
            ++f.idx;
            pushLoop(l); // serial (or demoted-parallel) loop
            continue;
          }
          case StmtKind::IfUnknown: {
            const auto &br = static_cast<const IfUnknownStmt &>(s);
            ++f.idx;
            if (evalBranch(br)) {
                if (!br.thenBody.empty())
                    push(br.thenBody);
            } else if (!br.elseBody.empty()) {
                push(br.elseBody);
            }
            continue;
          }
          case StmtKind::Call: {
            const auto &c = static_cast<const CallStmt &>(s);
            ++f.idx;
            push(_prog.procedures()[c.callee].body);
            _frames.back().callBoundaryOnPop = true;
            TaskOp op;
            op.kind = TaskOp::Kind::CallBoundary; // procedure entry
            return op;
          }
          case StmtKind::Critical: {
            const auto &cs = static_cast<const CriticalStmt &>(s);
            ++f.idx;
            push(cs.body);
            _frames.back().releaseLockOnPop = true;
            TaskOp op;
            op.kind = TaskOp::Kind::LockAcquire;
            return op;
          }
          case StmtKind::Barrier: {
            ++f.idx;
            hscd_assert(!_taskMode, "barrier inside a task stream");
            TaskOp op;
            op.kind = TaskOp::Kind::Barrier;
            return op;
          }
          case StmtKind::Sync: {
            const auto &sy = static_cast<const hir::SyncStmt &>(s);
            ++f.idx;
            TaskOp op;
            op.kind = sy.isPost ? TaskOp::Kind::Post
                                : TaskOp::Kind::Wait;
            op.flag = sy.flag.eval(_env);
            return op;
          }
        }
    }
}

} // namespace sim
} // namespace hscd
