#include "sim/stream.hh"

#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "common/log.hh"
#include "sim/interp.hh"

namespace hscd {
namespace sim {

namespace {

/**
 * Per-stream and per-program op budgets. A recording larger than the
 * hard cap is not built at all (the run falls back to the interpreter);
 * a program's cache evicts least-recently-used shapes once the cached
 * total passes the budget. At 32 bytes per op the budget bounds a
 * program's resident streams to ~256 MB.
 */
constexpr std::size_t kMaxStreamOps = std::size_t(1) << 24;
constexpr std::size_t kCacheBudgetOps = std::size_t(1) << 23;

/**
 * Alternate-policy branches draw from a run-wide alternation counter, so
 * evaluating one from inside a parallel epoch makes its outcome depend
 * on the cross-processor interleaving - which depends on scheme timing.
 * Such programs cannot be recorded once and replayed for every scheme.
 */
bool
alternateInParallel(const hir::Program &prog, const hir::StmtList &body,
                    bool inParallel,
                    std::set<std::pair<const hir::StmtList *, bool>> &seen)
{
    if (!seen.insert({&body, inParallel}).second)
        return false;
    for (const auto &s : body) {
        switch (s->kind()) {
          case hir::StmtKind::Loop: {
            const auto &l = static_cast<const hir::LoopStmt &>(*s);
            if (alternateInParallel(prog, l.body,
                                    inParallel || l.parallel, seen))
                return true;
            break;
          }
          case hir::StmtKind::IfUnknown: {
            const auto &br = static_cast<const hir::IfUnknownStmt &>(*s);
            if (inParallel && br.policy == hir::TakePolicy::Alternate)
                return true;
            if (alternateInParallel(prog, br.thenBody, inParallel, seen) ||
                alternateInParallel(prog, br.elseBody, inParallel, seen))
                return true;
            break;
          }
          case hir::StmtKind::Critical:
            if (alternateInParallel(
                    prog, static_cast<const hir::CriticalStmt &>(*s).body,
                    inParallel, seen))
                return true;
            break;
          case hir::StmtKind::Call:
            if (alternateInParallel(
                    prog,
                    prog.procedures()[static_cast<const hir::CallStmt &>(
                                          *s).callee].body,
                    inParallel, seen))
                return true;
            break;
          default:
            break;
        }
    }
    return false;
}

bool
programShapeEligible(const hir::Program &prog)
{
    std::set<std::pair<const hir::StmtList *, bool>> seen;
    return !alternateInParallel(prog, prog.main().body, false, seen);
}

bool
bodyHasSync(const hir::Program &prog, const hir::StmtList &body,
            std::set<const hir::StmtList *> &seen)
{
    if (!seen.insert(&body).second)
        return false;
    for (const auto &s : body) {
        switch (s->kind()) {
          case hir::StmtKind::Sync:
            return true;
          case hir::StmtKind::Loop:
            if (bodyHasSync(
                    prog, static_cast<const hir::LoopStmt &>(*s).body,
                    seen))
                return true;
            break;
          case hir::StmtKind::IfUnknown: {
            const auto &br = static_cast<const hir::IfUnknownStmt &>(*s);
            if (bodyHasSync(prog, br.thenBody, seen) ||
                bodyHasSync(prog, br.elseBody, seen))
                return true;
            break;
          }
          case hir::StmtKind::Critical:
            if (bodyHasSync(
                    prog,
                    static_cast<const hir::CriticalStmt &>(*s).body, seen))
                return true;
            break;
          case hir::StmtKind::Call:
            if (bodyHasSync(
                    prog,
                    prog.procedures()[static_cast<const hir::CallStmt &>(
                                          *s).callee].body,
                    seen))
                return true;
            break;
          default:
            break;
        }
    }
    return false;
}

/** Recording pass: interpret once, emit flat ops. */
class StreamBuilder
{
  public:
    StreamBuilder(const compiler::CompiledProgram &cp,
                  const MachineConfig &cfg)
        : _prog(cp.program), _marking(cp.marking), _cfg(cfg)
    {}

    std::shared_ptr<const StreamProgram>
    build()
    {
        auto sp = std::make_shared<StreamProgram>();
        RunCtx ctx;
        TaskStream master(_prog, ctx, _prog.main().body);
        while (true) {
            TaskOp op = master.next();
            if (op.kind == TaskOp::Kind::End)
                break;
            if (op.kind == TaskOp::Kind::BeginDoall) {
                StreamOp rec;
                rec.kind = StreamOp::Kind::BeginDoall;
                rec.aux = static_cast<std::int64_t>(sp->epochs.size());
                sp->master.push_back(rec);
                if (!recordEpoch(*sp, op, master.env(), ctx))
                    return nullptr; // op cap exceeded
            } else {
                sp->master.push_back(convert(op));
            }
            if (++_ops > kMaxStreamOps)
                return nullptr;
        }
        return sp;
    }

  private:
    StreamOp
    convert(const TaskOp &op) const
    {
        StreamOp rec;
        switch (op.kind) {
          case TaskOp::Kind::Ref: {
            rec.kind = StreamOp::Kind::Ref;
            rec.addr = op.addr;
            rec.ref = op.ref;
            rec.array = op.array;
            rec.write = op.write;
            const compiler::Mark &mark = _marking.mark(op.ref);
            rec.markCritical =
                mark.reason == compiler::MarkReason::Critical;
            if (!op.write) {
                rec.mark = mark.kind;
                rec.distance = mark.distance;
            }
            break;
          }
          case TaskOp::Kind::Compute:
            rec.kind = StreamOp::Kind::Compute;
            rec.aux = static_cast<std::int64_t>(op.cycles);
            break;
          case TaskOp::Kind::LockAcquire:
            rec.kind = StreamOp::Kind::LockAcquire;
            break;
          case TaskOp::Kind::LockRelease:
            rec.kind = StreamOp::Kind::LockRelease;
            break;
          case TaskOp::Kind::Post:
            rec.kind = StreamOp::Kind::Post;
            rec.aux = op.flag;
            break;
          case TaskOp::Kind::Wait:
            rec.kind = StreamOp::Kind::Wait;
            rec.aux = op.flag;
            break;
          case TaskOp::Kind::CallBoundary:
            rec.kind = StreamOp::Kind::CallBoundary;
            break;
          case TaskOp::Kind::Barrier:
            rec.kind = StreamOp::Kind::Barrier;
            break;
          default:
            panic("unexpected op while recording a stream");
        }
        return rec;
    }

    /**
     * Record one parallel epoch. Iteration placement mirrors the
     * executor exactly (same chunking arithmetic); each processor's
     * stream is then interpreted to completion independently, which is
     * legal precisely because eligible programs' task streams do not
     * read cross-stream interpreter state.
     */
    bool
    recordEpoch(StreamProgram &sp, const TaskOp &doall,
                const hir::Env &outer, RunCtx &ctx)
    {
        EpochStream ep;
        ep.hasSync = doallBodyHasSync(_prog, *doall.doall);
        const unsigned P = _cfg.procs;

        std::vector<std::unique_ptr<TaskStream>> streams;
        streams.reserve(P);
        for (unsigned p = 0; p < P; ++p)
            streams.push_back(std::make_unique<TaskStream>(
                _prog, ctx, *doall.doall, outer));

        std::vector<std::int64_t> iters;
        for (std::int64_t i = doall.lo; i <= doall.hi; i += doall.step)
            iters.push_back(i);
        ep.taskCount = iters.size();

        switch (_cfg.sched) {
          case SchedPolicy::Block: {
            std::size_t chunk = (iters.size() + P - 1) / P;
            for (unsigned p = 0; p < P; ++p) {
                std::size_t b = p * chunk;
                std::size_t e = std::min(iters.size(), b + chunk);
                for (std::size_t i = b; i < e; ++i)
                    streams[p]->addIteration(iters[i]);
            }
            break;
          }
          case SchedPolicy::Cyclic:
            for (std::size_t i = 0; i < iters.size(); ++i)
                streams[i % P]->addIteration(iters[i]);
            break;
          case SchedPolicy::Dynamic:
            panic("cannot record a dynamically scheduled epoch");
        }

        ep.perProc.resize(P);
        for (unsigned p = 0; p < P; ++p) {
            std::vector<StreamOp> &out = ep.perProc[p];
            std::int64_t cur = -1;
            while (true) {
                TaskOp op = streams[p]->next();
                if (op.kind == TaskOp::Kind::End)
                    break;
                if (streams[p]->currentIteration() != cur) {
                    cur = streams[p]->currentIteration();
                    StreamOp is;
                    is.kind = StreamOp::Kind::IterStart;
                    is.aux = cur;
                    out.push_back(is);
                    ++_ops;
                }
                out.push_back(convert(op));
                if (++_ops > kMaxStreamOps)
                    return false;
            }
        }
        sp.epochs.push_back(std::move(ep));
        return true;
    }

    const hir::Program &_prog;
    const compiler::Marking &_marking;
    const MachineConfig &_cfg;
    std::size_t _ops = 0;
};

/**
 * Per-CompiledProgram cache, hung off CompiledProgram::simCache.
 * Entries are keyed by the config fields that shape a stream; a null
 * entry caches "too big to record". The slot mutex serializes builds,
 * which both guarantees insert-once and keeps concurrent sweep threads
 * from recording the same shape twice.
 */
struct CacheSlot
{
    using Key = std::pair<unsigned, int>; ///< (procs, sched)

    std::mutex mu;
    std::optional<bool> eligible;
    std::map<Key, std::shared_ptr<const StreamProgram>> entries;
    std::list<Key> lru; ///< front = most recently used
    std::size_t totalOps = 0;
};

std::mutex g_slotMu;

// Process-wide cache telemetry, aggregated across every program's slot
// (slots die with their CompiledProgram; a long-lived server wants the
// running totals to survive for /stats).
std::atomic<std::uint64_t> g_streamBuilds{0};
std::atomic<std::uint64_t> g_streamHits{0};
std::atomic<std::uint64_t> g_streamEvictions{0};

CacheSlot &
slotFor(const compiler::CompiledProgram &cp)
{
    std::lock_guard<std::mutex> g(g_slotMu);
    if (!cp.simCache)
        cp.simCache = std::make_shared<CacheSlot>();
    return *static_cast<CacheSlot *>(cp.simCache.get());
}

void
touchLru(CacheSlot &slot, const CacheSlot::Key &key)
{
    slot.lru.remove(key);
    slot.lru.push_front(key);
}

} // namespace

std::size_t
StreamProgram::opCount() const
{
    std::size_t n = master.size();
    for (const EpochStream &ep : epochs)
        for (const std::vector<StreamOp> &v : ep.perProc)
            n += v.size();
    return n;
}

bool
doallBodyHasSync(const hir::Program &prog, const hir::LoopStmt &loop)
{
    std::set<const hir::StmtList *> seen;
    return bodyHasSync(prog, loop.body, seen);
}

bool
streamEligible(const compiler::CompiledProgram &cp,
               const MachineConfig &cfg)
{
    if (cfg.sched == SchedPolicy::Dynamic)
        return false;
    return programShapeEligible(cp.program);
}

std::shared_ptr<const StreamProgram>
buildStreamProgram(const compiler::CompiledProgram &cp,
                   const MachineConfig &cfg)
{
    if (!streamEligible(cp, cfg))
        return nullptr;
    return StreamBuilder(cp, cfg).build();
}

std::shared_ptr<const StreamProgram>
epochStream(const compiler::CompiledProgram &cp, const MachineConfig &cfg)
{
    if (cfg.sched == SchedPolicy::Dynamic)
        return nullptr;

    CacheSlot &slot = slotFor(cp);
    std::lock_guard<std::mutex> g(slot.mu);

    if (!slot.eligible.has_value())
        slot.eligible = programShapeEligible(cp.program);
    if (!*slot.eligible)
        return nullptr;

    CacheSlot::Key key{cfg.procs, static_cast<int>(cfg.sched)};
    auto it = slot.entries.find(key);
    if (it != slot.entries.end()) {
        touchLru(slot, key);
        ++g_streamHits;
        return it->second;
    }

    auto sp = StreamBuilder(cp, cfg).build();
    slot.entries[key] = sp;
    slot.lru.push_front(key);
    ++g_streamBuilds;
    if (sp)
        slot.totalOps += sp->opCount();

    // Evict least-recently-used shapes past the budget. Dropping the
    // shared_ptr is safe even mid-run: in-flight executors hold their
    // own reference.
    while (slot.totalOps > kCacheBudgetOps && slot.lru.size() > 1) {
        CacheSlot::Key victim = slot.lru.back();
        slot.lru.pop_back();
        auto vit = slot.entries.find(victim);
        if (vit != slot.entries.end()) {
            if (vit->second)
                slot.totalOps -= vit->second->opCount();
            slot.entries.erase(vit);
            ++g_streamEvictions;
        }
    }
    return sp;
}

StreamCacheStats
streamCacheStats()
{
    StreamCacheStats s;
    s.builds = g_streamBuilds.load();
    s.hits = g_streamHits.load();
    s.evictions = g_streamEvictions.load();
    return s;
}

} // namespace sim
} // namespace hscd
