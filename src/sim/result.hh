/**
 * @file
 * Results of one simulated run.
 */

#ifndef HSCD_SIM_RESULT_HH
#define HSCD_SIM_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/abort.hh"
#include "mem/coherence.hh"
#include "obs/profile.hh"

namespace hscd {
namespace sim {

/** A read observed a value other than the last one written before it. */
struct OracleViolation
{
    Addr addr = 0;
    hir::RefId ref = hir::invalidRef;
    mem::ValueStamp seen = 0;
    mem::ValueStamp expected = 0;
    EpochId epoch = 0;
    ProcId proc = 0;

    bool operator==(const OracleViolation &) const = default;
};

/**
 * A cache hit observed a value older than the word's freshest write
 * (shadow-epoch race detector, MachineConfig::shadowEpochCheck).
 */
struct ShadowViolation
{
    Addr addr = 0;
    hir::RefId ref = hir::invalidRef;
    ProcId proc = 0;          ///< the reader that hit a stale copy
    EpochId epoch = 0;        ///< epoch of the stale hit
    ProcId writerProc = 0;    ///< who produced the freshest value
    EpochId writerEpoch = 0;  ///< the epoch it was produced in

    bool operator==(const ShadowViolation &) const = default;
};

struct RunResult
{
    Cycles cycles = 0;           ///< parallel execution time
    EpochId epochs = 0;          ///< boundaries crossed
    Counter parallelEpochs = 0;  ///< DOALL instances executed
    Counter tasks = 0;           ///< DOALL iterations executed

    Counter reads = 0;
    Counter writes = 0;
    Counter readHits = 0;
    Counter readMisses = 0;
    double readMissRate = 0;
    double avgMissLatency = 0;

    Counter missCold = 0;
    Counter missReplacement = 0;
    Counter missTrueShare = 0;
    Counter missFalseShare = 0;
    Counter missConservative = 0;
    Counter missTagReset = 0;
    Counter missUncached = 0;

    Counter timeReads = 0;
    Counter timeReadHits = 0;
    Counter bypassReads = 0;

    Counter readPackets = 0;
    Counter writePackets = 0;
    Counter coherencePackets = 0;
    Counter writebackPackets = 0;
    Counter readWords = 0;
    Counter writeWords = 0;
    Counter writebackWords = 0;
    Counter trafficPackets = 0;
    Counter trafficWords = 0;

    /** Busiest / average processor work inside parallel epochs. */
    Cycles busyMax = 0;
    double busyAvg = 0;
    /** busyMax / busyAvg: 1.0 means perfectly balanced DOALLs. */
    double
    imbalance() const
    {
        return busyAvg > 0 ? double(busyMax) / busyAvg : 1.0;
    }
    /** Cycles spent outside parallel epochs (serial + barriers). */
    Cycles serialCycles = 0;

    /** Coherence errors (must be 0 for a sound scheme + legal program). */
    Counter oracleViolations = 0;
    /** Data races that make the program an illegal DOALL program. */
    Counter doallViolations = 0;
    std::vector<OracleViolation> firstViolations;

    /** Stale cache hits caught by the shadow-epoch race detector
     *  (always 0 unless MachineConfig::shadowEpochCheck is on). */
    Counter shadowViolations = 0;
    std::vector<ShadowViolation> firstShadowViolations;

    /**
     * Structured termination record. kind == None means the run
     * completed; anything else means it was stopped by the watchdog or
     * the protocol retry budget, with counters harvested up to the point
     * of death and a post-mortem snapshot in abort.snapshot. Aborted
     * results are first-class: the sweep records them instead of dying.
     */
    fault::AbortInfo abort;
    bool aborted() const { return abort.aborted(); }

    /** Fault-injection accounting (all 0 when the plan is disabled). */
    Counter faultsInjected = 0;
    Counter faultsRecovered = 0;
    Counter faultRetries = 0;

    /**
     * Self-profiling wall-clock phase breakdown (all zero unless the
     * run was profiled). PhaseProfile compares always-equal and is
     * excluded from fingerprint(), so this field never perturbs the
     * determinism contract below.
     */
    obs::PhaseProfile profile;

    /** Unnecessary coherence misses (conservative + false sharing). */
    Counter
    unnecessaryMisses() const
    {
        return missConservative + missFalseShare;
    }

    std::string summary() const;

    /**
     * Field-by-field equality; the determinism contract of the sweep
     * engine is that a cell's RunResult compares equal at any --jobs.
     */
    bool operator==(const RunResult &) const = default;

    /** FNV-1a digest over every field (doubles by bit pattern). */
    std::uint64_t fingerprint() const;
};

} // namespace sim
} // namespace hscd

#endif // HSCD_SIM_RESULT_HH
