/**
 * @file
 * Memory-event trace capture and replay.
 *
 * The execution-driven engine can emit every scheme-visible event (one
 * record per reference plus epoch boundaries) to a trace; traces replay
 * through any coherence scheme without re-interpreting the program -
 * the classic trace-driven workflow of the era ([32] pairs both modes).
 * The text format is stable and diff-friendly:
 *
 *     H hscd-trace 1 <procs> <dataBytes>
 *     A <proc> <addr> <R|W> <mark> <dist> <stamp> <crit>
 *     B <epoch>
 */

#ifndef HSCD_SIM_TRACE_HH
#define HSCD_SIM_TRACE_HH

#include <iosfwd>
#include <vector>

#include "mem/coherence.hh"
#include "sim/result.hh"

namespace hscd {
namespace sim {

struct TraceRecord
{
    enum class Type : std::uint8_t { Access, Boundary };

    Type type = Type::Access;
    mem::MemOp op{};       ///< valid for Access (op.now unused on replay)
    EpochId epoch = 0;     ///< valid for Boundary
};

/** Receives events during an instrumented run. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onAccess(const mem::MemOp &op) = 0;
    virtual void onBoundary(EpochId epoch) = 0;
    /**
     * Scheme verdict for the op just issued via onAccess: hit/miss,
     * class, stall, and the epoch it executed in. Default no-op so
     * record-only sinks (TraceBuffer) are unaffected; the observability
     * layer (hscd_inspect why-miss) needs the outcome stream to
     * reconstruct per-word timetag state.
     */
    virtual void
    onOutcome(const mem::MemOp &op, const mem::AccessResult &res,
              EpochId epoch)
    {
        (void)op; (void)res; (void)epoch;
    }
};

/** Collects records in memory. */
class TraceBuffer : public TraceSink
{
  public:
    void onAccess(const mem::MemOp &op) override;
    void onBoundary(EpochId epoch) override;

    const std::vector<TraceRecord> &records() const { return _records; }
    std::vector<TraceRecord> take() { return std::move(_records); }

  private:
    std::vector<TraceRecord> _records;
};

/** Serialize records (with a header carrying machine facts). */
void writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
                unsigned procs, Addr data_bytes);

/** Parse a trace; fatal() on malformed input. */
struct ParsedTrace
{
    std::vector<TraceRecord> records;
    unsigned procs = 0;
    Addr dataBytes = 0;
};
ParsedTrace readTrace(std::istream &is);

/** Outcome of a trace replay. */
struct ReplayResult
{
    Counter reads = 0;
    Counter writes = 0;
    Counter readMisses = 0;
    double readMissRate = 0;
    Counter missConservative = 0;
    Counter missFalseShare = 0;
    Counter trafficWords = 0;
    Cycles cycles = 0;
    /** Structured abort that ended the replay early (kind None if not). */
    fault::AbortInfo abort;

    bool aborted() const { return abort.aborted(); }
};

/**
 * Drive @p cfg's scheme with a recorded trace. Per-processor clocks
 * advance by each access's stall; boundaries synchronize all clocks.
 *
 * When @p sink is non-null it receives every record as it replays plus
 * the scheme's verdict for each access via TraceSink::onOutcome — the
 * hook the model checker uses to cross-check a counterexample trace
 * against the real scheme, outcome by outcome.
 *
 * When @p script is non-null and non-empty, a FaultInjector armed with
 * exactly those scripted firings (plus cfg.fault's probabilistic plan,
 * normally rate 0) is attached to the scheme, so a replay reproduces a
 * fault scenario at precise injection opportunities. A structured abort
 * (retry exhaustion) ends the replay early and is reported in
 * ReplayResult::abort rather than thrown.
 */
ReplayResult replayTrace(const std::vector<TraceRecord> &records,
                         const MachineConfig &cfg, Addr data_bytes,
                         TraceSink *sink = nullptr,
                         const std::vector<fault::ScriptedFault> *script =
                             nullptr);

} // namespace sim
} // namespace hscd

#endif // HSCD_SIM_TRACE_HH
