/**
 * @file
 * Resumable HIR interpreter.
 *
 * A TaskStream walks a statement list with an explicit frame stack and
 * yields one operation at a time, which is what lets the executor
 * interleave many processors' work in global time order. Two modes:
 *
 *  - top-level (the serial master thread): encountering a DOALL yields a
 *    BeginDoall operation with evaluated bounds and does not descend;
 *  - task mode (one DOALL's iterations on one processor): nested DOALLs
 *    are demoted to serial loops, and the stream runs a list of
 *    iterations that can be extended dynamically (self-scheduling).
 */

#ifndef HSCD_SIM_INTERP_HH
#define HSCD_SIM_INTERP_HH

#include <map>
#include <memory>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace sim {

/** Shared per-run interpreter state (branch alternation counters). */
struct RunCtx
{
    std::map<std::uint32_t, std::uint64_t> ifCounters;
    std::uint64_t hashSeed = 0x9e3779b9;
};

struct TaskOp
{
    enum class Kind
    {
        Ref,          ///< one memory reference
        Compute,      ///< burn cycles
        LockAcquire,  ///< enter critical section
        LockRelease,  ///< leave critical section
        Post,         ///< post a synchronization flag (release)
        Wait,         ///< block on a synchronization flag
        CallBoundary, ///< procedure entry/return (for flush-at-call mode)
        BeginDoall,   ///< top-level only: a parallel epoch starts
        Barrier,      ///< top-level only: explicit epoch boundary
        End,          ///< stream exhausted
    };

    Kind kind = Kind::End;
    // Ref:
    Addr addr = 0;
    bool write = false;
    hir::RefId ref = hir::invalidRef;
    hir::ArrayId array = hir::invalidArray;
    // Compute:
    Cycles cycles = 0;
    // Post/Wait:
    std::int64_t flag = 0;
    // BeginDoall:
    const hir::LoopStmt *doall = nullptr;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 1;
};

class TaskStream
{
  public:
    /** Top-level master stream over @p body. */
    TaskStream(const hir::Program &prog, RunCtx &ctx,
               const hir::StmtList &body);

    /**
     * Task-mode stream over one DOALL's body; iterations are appended
     * with addIterations(). @p outer_env carries the master's bindings.
     */
    TaskStream(const hir::Program &prog, RunCtx &ctx,
               const hir::LoopStmt &doall, hir::Env outer_env);

    /** Queue more iterations (initial chunk or dynamic self-schedule). */
    void addIterations(std::int64_t lo, std::int64_t hi, std::int64_t step);
    void addIteration(std::int64_t iter);

    /** Produce the next operation. */
    TaskOp next();

    /** The master's current environment (snapshot for task streams). */
    const hir::Env &env() const { return _env; }

    /** Iteration currently executing (task mode; -1 before the first). */
    std::int64_t currentIteration() const { return _currentIter; }

    /** True when a task-mode stream is between iterations. */
    bool betweenIterations() const
    {
        return _taskMode && _frames.empty();
    }

  private:
    struct Frame
    {
        const hir::StmtList *list = nullptr;
        std::size_t idx = 0;
        // Loop frames re-execute their list, advancing the variable.
        const hir::LoopStmt *loop = nullptr;
        std::int64_t cur = 0;
        std::int64_t hi = 0;
        bool hadPrev = false;
        std::int64_t prevValue = 0;   ///< shadowed binding to restore
        bool releaseLockOnPop = false;
        bool callBoundaryOnPop = false;
    };

    /** Push a frame for @p list. */
    void push(const hir::StmtList &list);
    /** Enter a loop (binds the variable); no-op for zero trips. */
    void pushLoop(const hir::LoopStmt &loop);
    void popFrame();
    bool evalBranch(const hir::IfUnknownStmt &br);
    std::int64_t evalClamped(const hir::IntExpr &e) const;
    Addr refAddr(const hir::ArrayRefStmt &ref) const;

    const hir::Program &_prog;
    RunCtx &_ctx;
    hir::Env _env;
    std::vector<Frame> _frames;
    bool _taskMode = false;

    // Task mode:
    const hir::LoopStmt *_doall = nullptr;
    std::vector<std::int64_t> _pending;
    std::size_t _nextIter = 0;
    std::int64_t _currentIter = -1;
    bool _varBound = false;
};

} // namespace sim
} // namespace hscd

#endif // HSCD_SIM_INTERP_HH
