#include "sim/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include <memory>

#include "common/log.hh"
#include "fault/abort.hh"
#include "mem/memory.hh"
#include "network/kruskal_snir.hh"

namespace hscd {
namespace sim {

using compiler::MarkKind;

void
TraceBuffer::onAccess(const mem::MemOp &op)
{
    TraceRecord r;
    r.type = TraceRecord::Type::Access;
    r.op = op;
    _records.push_back(r);
}

void
TraceBuffer::onBoundary(EpochId epoch)
{
    TraceRecord r;
    r.type = TraceRecord::Type::Boundary;
    r.epoch = epoch;
    _records.push_back(r);
}

namespace {

char
markChar(MarkKind k)
{
    switch (k) {
      case MarkKind::Normal:
        return 'n';
      case MarkKind::TimeRead:
        return 't';
      case MarkKind::Bypass:
        return 'b';
    }
    return '?';
}

MarkKind
parseMark(char c)
{
    switch (c) {
      case 'n':
        return MarkKind::Normal;
      case 't':
        return MarkKind::TimeRead;
      case 'b':
        return MarkKind::Bypass;
      default:
        fatal("trace: bad mark '%c'", c);
    }
}

} // namespace

void
writeTrace(std::ostream &os, const std::vector<TraceRecord> &records,
           unsigned procs, Addr data_bytes)
{
    os << "H hscd-trace 1 " << procs << " " << data_bytes << "\n";
    for (const TraceRecord &r : records) {
        if (r.type == TraceRecord::Type::Boundary) {
            os << "B " << r.epoch << "\n";
            continue;
        }
        const mem::MemOp &op = r.op;
        os << "A " << op.proc << " " << op.addr << " " << op.arrayId
           << " " << (op.write ? 'W' : 'R') << " " << markChar(op.mark)
           << " " << op.distance << " " << op.stamp << " "
           << (op.critical ? 1 : 0) << "\n";
    }
}

ParsedTrace
readTrace(std::istream &is)
{
    ParsedTrace out;
    std::string line;
    if (!std::getline(is, line))
        fatal("trace: empty input");
    {
        std::istringstream hs(line);
        std::string tag, magic;
        int version = 0;
        hs >> tag >> magic >> version >> out.procs >> out.dataBytes;
        if (tag != "H" || magic != "hscd-trace" || version != 1)
            fatal("trace: bad header '%s'", line);
    }
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        TraceRecord r;
        if (tag == "B") {
            r.type = TraceRecord::Type::Boundary;
            ls >> r.epoch;
        } else if (tag == "A") {
            r.type = TraceRecord::Type::Access;
            char rw = 0, mark = 0;
            int crit = 0;
            ls >> r.op.proc >> r.op.addr >> r.op.arrayId >> rw >> mark >>
                r.op.distance >> r.op.stamp >> crit;
            r.op.write = rw == 'W';
            r.op.mark = parseMark(mark);
            r.op.critical = crit != 0;
        } else {
            fatal("trace line %d: unknown tag '%s'", lineno, tag);
        }
        if (!ls)
            fatal("trace line %d: malformed record", lineno);
        out.records.push_back(r);
    }
    return out;
}

ReplayResult
replayTrace(const std::vector<TraceRecord> &records,
            const MachineConfig &cfg, Addr data_bytes, TraceSink *sink,
            const std::vector<fault::ScriptedFault> *script)
{
    stats::StatGroup root("replay");
    mem::MainMemory memory(data_bytes);
    net::Network network(&root, cfg.procs, cfg.networkRadix,
                         cfg.maxNetworkLoad, cfg.topology);
    auto scheme = mem::makeScheme(cfg, memory, network, &root);

    std::unique_ptr<fault::FaultInjector> injector;
    if (cfg.fault.enabled() || (script && !script->empty())) {
        injector = std::make_unique<fault::FaultInjector>(cfg.fault);
        if (script)
            injector->script(*script);
        network.setFaultInjector(injector.get());
        scheme->setFaultInjector(injector.get());
    }

    ReplayResult out;
    std::vector<Cycles> clock(cfg.procs, 0);
    EpochId epoch = 0;
    try {
        for (const TraceRecord &r : records) {
            if (r.type == TraceRecord::Type::Boundary) {
                Cycles t = 0;
                for (ProcId p = 0; p < cfg.procs; ++p) {
                    t = std::max(t, clock[p]);
                    t = std::max(t, scheme->writeDrainTime(p));
                }
                t += cfg.barrierCycles;
                if (sink)
                    sink->onBoundary(r.epoch);
                t += scheme->epochBoundary(r.epoch);
                epoch = r.epoch;
                std::fill(clock.begin(), clock.end(), t);
                network.endWindow(t);
                continue;
            }
            mem::MemOp op = r.op;
            hscd_assert(op.proc < cfg.procs,
                        "trace targets processor %d beyond the machine",
                        op.proc);
            op.now = clock[op.proc];
            if (sink)
                sink->onAccess(op);
            mem::AccessResult res = scheme->access(op);
            if (sink)
                sink->onOutcome(op, res, epoch);
            clock[op.proc] += res.stall;
        }
    } catch (const fault::RunAbort &abort) {
        out.abort = abort.info;
    }

    const mem::SchemeStats &st = scheme->stats();
    out.reads = st.reads.value();
    out.writes = st.writes.value();
    out.readMisses = st.readMisses.value();
    out.readMissRate = scheme->readMissRate();
    out.missConservative = st.missConservative.value();
    out.missFalseShare = st.missFalseShare.value();
    out.trafficWords = network.totalWords();
    for (Cycles c : clock)
        out.cycles = std::max(out.cycles, c);
    return out;
}

} // namespace sim
} // namespace hscd
