/**
 * @file
 * TRFD-like kernel: two-electron integral transformation.
 *
 * Structure modeled: the transformation is a pair of triangular
 * matrix-product passes V = C^T * X * C. Each task accumulates into its
 * output element across the whole contraction dimension, rewriting the
 * same shared word O(N) times - the redundant write-through traffic the
 * paper calls out for TRFD (eliminated by a cache-organized write
 * buffer, cheap for the write-back directory). Triangular bounds make
 * block schedules imbalanced, and adjacent tasks write adjacent words,
 * which at 64-byte lines turns into directory false sharing.
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildTrfd(int scale)
{
    const std::int64_t norb = 12L * scale; // orbitals
    const int passes = 2;

    ProgramBuilder b;
    b.param("M", norb);
    b.array("X", {"M", "M"});   // integral block
    b.array("C", {"M", "M"});   // MO coefficients (read-only after init)
    b.array("V", {"M", "M"});   // transformed block

    b.proc("MAIN", [&] {
        b.doserial("i0", 0, norb - 1, [&] {
            b.doserial("j0", 0, norb - 1, [&] {
                b.write("X", {b.v("i0"), b.v("j0")});
                b.write("C", {b.v("i0"), b.v("j0")});
            });
        });

        b.doserial("p", 0, passes - 1, [&] {
            // First half-transformation: triangular column loop; the
            // output element is re-accumulated (rewritten) for every k.
            b.doall("i", 0, norb - 1, [&] {
                b.doserial("j", 0, b.v("i"), [&] {
                    b.doserial("k", 0, norb - 1, [&] {
                        b.read("X", {b.v("k"), b.v("j")});
                        b.read("C", {b.v("k"), b.v("i")});
                        b.compute(2);
                        b.write("V", {b.v("j"), b.v("i")});
                    });
                });
            });
            // Symmetrize: copy the triangle across the diagonal.
            b.doall("i2", 0, norb - 1, [&] {
                b.doserial("j2", 0, b.v("i2"), [&] {
                    b.read("V", {b.v("j2"), b.v("i2")});
                    b.write("V", {b.v("i2"), b.v("j2")});
                });
            });
            // Second half: X <- C^T * V (feeds the next pass).
            b.doall("i3", 0, norb - 1, [&] {
                b.doserial("j3", 0, norb - 1, [&] {
                    b.doserial("k3", 0, norb - 1, [&] {
                        b.read("V", {b.v("k3"), b.v("j3")});
                        b.read("C", {b.v("k3"), b.v("i3")});
                        b.compute(2);
                        b.write("X", {b.v("j3"), b.v("i3")});
                    });
                });
            });
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
