/**
 * @file
 * OCEAN-like kernel: 2-D ocean basin circulation.
 *
 * Structure modeled: double-buffered 5-point stencil relaxation sweeps
 * over the stream-function grid, serial boundary-condition updates
 * between sweeps (serial-to-parallel sharing), and a residual reduction
 * accumulated in a critical section every few steps.
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildOcean(int scale)
{
    const std::int64_t n = 24L * scale; // grid edge
    const int steps = 4;

    ProgramBuilder b;
    b.param("N", n);
    b.array("PSI", {"N", "N"});   // stream function
    b.array("WRK", {"N", "N"});   // sweep buffer
    b.array("VOR", {"N", "N"});   // vorticity (second prognostic field)
    b.array("RES", {8});          // residual accumulator

    b.proc("MAIN", [&] {
        b.doserial("ii", 0, n - 1, [&] {
            b.doserial("jj", 0, n - 1, [&] {
                b.write("PSI", {b.v("ii"), b.v("jj")});
                b.write("VOR", {b.v("ii"), b.v("jj")});
            });
        });

        b.doserial("t", 0, steps - 1, [&] {
            // Vorticity advection: Arakawa-style 5-point update driven
            // by the stream function of the previous step.
            b.doall("av", 1, n - 2, [&] {
                b.doserial("aw", 1, n - 2, [&] {
                    b.read("PSI", {b.v("av") - 1, b.v("aw")});
                    b.read("PSI", {b.v("av") + 1, b.v("aw")});
                    b.read("VOR", {b.v("av"), b.v("aw")});
                    b.compute(5);
                    b.write("VOR", {b.v("av"), b.v("aw")});
                });
            });
            // Serial boundary conditions (processor-0 affinity case).
            b.doserial("bc", 0, n - 1, [&] {
                b.write("PSI", {b.v("bc"), b.c(0)});
                b.write("PSI", {b.v("bc"), b.p("N") - 1});
            });
            // Relaxation sweep of the Poisson solve (vorticity source):
            // rows in parallel.
            b.doall("i", 1, n - 2, [&] {
                b.doserial("j", 1, n - 2, [&] {
                    b.read("PSI", {b.v("i") - 1, b.v("j")});
                    b.read("PSI", {b.v("i") + 1, b.v("j")});
                    b.read("PSI", {b.v("i"), b.v("j") - 1});
                    b.read("PSI", {b.v("i"), b.v("j") + 1});
                    b.read("VOR", {b.v("i"), b.v("j")});
                    b.compute(6);
                    b.write("WRK", {b.v("i"), b.v("j")});
                });
            });
            // Copy back + residual reduction.
            b.doall("i2", 1, n - 2, [&] {
                b.doserial("j2", 1, n - 2, [&] {
                    b.read("WRK", {b.v("i2"), b.v("j2")});
                    b.write("PSI", {b.v("i2"), b.v("j2")});
                });
                b.critical([&] {
                    b.read("RES", {b.c(0)});
                    b.write("RES", {b.c(0)});
                });
            });
            // Serial convergence check.
            b.read("RES", {b.c(0)});
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
