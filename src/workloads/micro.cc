/** @file Microkernel programs. */

#include "workloads/workloads.hh"

#include "hir/builder.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
microJacobi(std::int64_t n, int steps)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("OLD", {"N"});
    b.array("NEW", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("OLD", {b.v("init")});
        });
        b.doserial("t", 0, steps - 1, [&] {
            b.doall("i", 1, n - 2, [&] {
                b.read("OLD", {b.v("i") - 1});
                b.read("OLD", {b.v("i")});
                b.read("OLD", {b.v("i") + 1});
                b.compute(4);
                b.write("NEW", {b.v("i")});
            });
            b.doall("j", 1, n - 2, [&] {
                b.read("NEW", {b.v("j")});
                b.write("OLD", {b.v("j")});
            });
        });
    });
    return b.build();
}

hir::Program
microMatmul(std::int64_t n)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("A", {"N", "N"});
    b.array("B", {"N", "N"});
    b.array("C", {"N", "N"});
    b.proc("MAIN", [&] {
        b.doserial("ii", 0, n - 1, [&] {
            b.doserial("jj", 0, n - 1, [&] {
                b.write("A", {b.v("ii"), b.v("jj")});
                b.write("B", {b.v("ii"), b.v("jj")});
            });
        });
        // DOALL over columns of C; tasks broadcast-read A.
        b.doall("j", 0, n - 1, [&] {
            b.doserial("i", 0, n - 1, [&] {
                b.doserial("k", 0, n - 1, [&] {
                    b.read("A", {b.v("i"), b.v("k")});
                    b.read("B", {b.v("k"), b.v("j")});
                    b.compute(2);
                });
                b.write("C", {b.v("i"), b.v("j")});
            });
        });
    });
    return b.build();
}

hir::Program
microReduction(std::int64_t n, int rounds)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("DATA", {"N"});
    b.array("SUM", {8});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("DATA", {b.v("init")});
        });
        b.doserial("r", 0, rounds - 1, [&] {
            b.write("SUM", {b.c(0)});
            b.doall("i", 0, n - 1, [&] {
                b.read("DATA", {b.v("i")});
                b.compute(3);
                b.critical([&] {
                    b.read("SUM", {b.c(0)});
                    b.write("SUM", {b.c(0)});
                });
            });
            b.read("SUM", {b.c(0)});
        });
    });
    return b.build();
}

hir::Program
microTranspose(std::int64_t n, int rounds)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("X", {"N", "N"});
    b.array("Y", {"N", "N"});
    b.proc("MAIN", [&] {
        b.doserial("ii", 0, n - 1, [&] {
            b.doserial("jj", 0, n - 1, [&] {
                b.write("X", {b.v("ii"), b.v("jj")});
            });
        });
        b.doserial("r", 0, rounds - 1, [&] {
            // Every task's row gathers a column written by all tasks of
            // the previous round: all-to-all sharing.
            b.doall("i", 0, n - 1, [&] {
                b.doserial("j", 0, n - 1, [&] {
                    b.read("X", {b.v("j"), b.v("i")});
                    b.write("Y", {b.v("i"), b.v("j")});
                });
            });
            b.doall("i2", 0, n - 1, [&] {
                b.doserial("j2", 0, n - 1, [&] {
                    b.read("Y", {b.v("j2"), b.v("i2")});
                    b.write("X", {b.v("i2"), b.v("j2")});
                });
            });
        });
    });
    return b.build();
}

hir::Program
microPipeline(std::int64_t n, int rounds)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("S0", {"N"});
    b.array("S1", {"N"});
    b.array("S2", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("r", 0, rounds - 1, [&] {
            b.doall("i", 0, n - 1, [&] {
                b.compute(2);
                b.write("S0", {b.v("i")});
            });
            b.doall("j", 0, n - 1, [&] {
                b.read("S0", {b.v("j")});
                b.compute(2);
                b.write("S1", {b.v("j")});
            });
            b.doall("k", 0, n - 1, [&] {
                b.read("S1", {b.v("k")});
                b.compute(2);
                b.write("S2", {b.v("k")});
            });
            // Serial consumer scans the pipeline tail.
            b.doserial("s", 0, 15, [&] {
                b.read("S2", {b.v("s") * (n / 16)});
            });
        });
    });
    return b.build();
}

hir::Program
microLu(std::int64_t n)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("A", {"N", "N"});
    b.proc("MAIN", [&] {
        b.doserial("ii", 0, n - 1, [&] {
            b.doserial("jj", 0, n - 1, [&] {
                b.write("A", {b.v("ii"), b.v("jj")});
            });
        });
        // Right-looking elimination: the panel scale and the trailing
        // update shrink with k, unbalancing block schedules.
        b.doserial("k", 0, n - 2, [&] {
            b.doall("i", b.v("k") + 1, b.p("N") - 1, [&] {
                b.read("A", {b.v("k"), b.v("k")});
                b.read("A", {b.v("i"), b.v("k")});
                b.compute(3);
                b.write("A", {b.v("i"), b.v("k")});
            });
            b.doall("i2", b.v("k") + 1, b.p("N") - 1, [&] {
                b.doserial("j", b.v("k") + 1, b.p("N") - 1, [&] {
                    b.read("A", {b.v("i2"), b.v("k")});
                    b.read("A", {b.v("k"), b.v("j")});
                    b.read("A", {b.v("i2"), b.v("j")});
                    b.compute(2);
                    b.write("A", {b.v("i2"), b.v("j")});
                });
            });
        });
    });
    return b.build();
}

hir::Program
microFft(std::int64_t n, int rounds)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("X", {"N"});
    b.array("Y", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("X", {b.v("init")});
        });
        // Each round applies a perfect shuffle (the data motion of an
        // FFT stage) and swaps buffers: every element moves, so every
        // read is a Time-Read of another task's previous-round output.
        b.doserial("r", 0, rounds - 1, [&] {
            b.doall("j", 0, n / 2 - 1, [&] {
                b.read("X", {b.v("j") * 2});
                b.read("X", {b.v("j") * 2 + 1});
                b.compute(4);
                b.write("Y", {b.v("j")});
                b.write("Y", {b.v("j") + n / 2});
            });
            b.doall("j2", 0, n / 2 - 1, [&] {
                b.read("Y", {b.v("j2") * 2});
                b.read("Y", {b.v("j2") * 2 + 1});
                b.compute(4);
                b.write("X", {b.v("j2")});
                b.write("X", {b.v("j2") + n / 2});
            });
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
