/**
 * @file
 * Seed-deterministic synthetic workload generators.
 *
 * Six parameterized families cover the access-pattern taxonomy the
 * Perfect Club kernels only sample (streaming vs reuse mixes,
 * producer-consumer chains, stencil halos, migratory sharing, and
 * false-sharing stressors). Each generator emits well-formed,
 * legal-DOALL HIR from nothing but (family, seed, scale) and is
 * compiled by the ordinary Analysis pipeline - markings are earned, not
 * hand-written - so every program inherits the lint, oracle, shadow,
 * fast-path-equivalence, and fault harnesses for free.
 *
 * Specs are spelled `synth:<family>:<seed>` and accepted anywhere a
 * workload name is (bench sweeps, hscd_lint, hscd_faultcheck,
 * hscd_inspect). Determinism contract: the same (family, seed, scale)
 * produces byte-identical HIR in any process, at any thread count
 * (pinned by tests/test_synth_determinism.cc).
 */

#ifndef HSCD_WORKLOADS_SYNTH_HH
#define HSCD_WORKLOADS_SYNTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace workloads {

/** The generator families, in stable (alphabetical) order. */
std::vector<std::string> synthFamilies();

/** Is @p name one of synthFamilies() (case-insensitive)? */
bool isSynthFamily(const std::string &name);

/** Does @p spec look like a synth workload spec (`synth:...`)? */
bool isSynthSpec(const std::string &spec);

/** A parsed `synth:<family>:<seed>` workload spec. */
struct SynthSpec
{
    std::string family;      ///< canonical lower-case family name
    std::uint64_t seed = 1;

    /** Canonical spec string, `synth:<family>:<seed>`. */
    std::string str() const;
};

/**
 * Parse `synth:<family>:<seed>`. The family must be one of
 * synthFamilies() and the seed a plain decimal integer; anything else
 * is a user error (fatal(), i.e. FatalError - the CLIs map it to the
 * usage exit code).
 */
SynthSpec parseSynthSpec(const std::string &spec);

/**
 * Generate one synthetic program. @p scale multiplies the problem
 * size the same way it does for the six Perfect-Club-like kernels
 * (1 = test-sized, 2 = benchmark-sized).
 */
hir::Program buildSynth(const SynthSpec &spec, int scale = 1);
hir::Program buildSynth(const std::string &family, std::uint64_t seed,
                        int scale = 1);

} // namespace workloads
} // namespace hscd

#endif // HSCD_WORKLOADS_SYNTH_HH
