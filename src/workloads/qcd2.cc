/**
 * @file
 * QCD2-like kernel: 4-D lattice gauge theory (quenched QCD).
 *
 * Structure modeled: checkerboard (even/odd) pseudo-fermion updates where
 * each site gathers its neighbours in four directions from the opposite
 * parity array, read-mostly gauge links refreshed occasionally by a
 * serial heat-bath pass that touches data-dependent (compile-time-opaque)
 * sites, and fine-grained word-adjacent writes that produce false sharing
 * in line-grained directory protocols at 64-byte lines (the paper's QCD2
 * anomaly).
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildQcd2(int scale)
{
    // 4-D lattice flattened: L^3 * T sites per parity.
    const std::int64_t l = 4L * scale;
    const std::int64_t sites = l * l * l * 2; // per parity
    const std::int64_t lstride = l;           // x-neighbour stride
    const int sweeps = 3;

    ProgramBuilder b;
    b.param("NS", sites);
    b.array("PHIE", {"NS"});          // even-parity pseudofermion
    b.array("PHIO", {"NS"});          // odd-parity pseudofermion
    b.array("CHIE", {"NS"});          // second flavour, even parity
    b.array("CHIO", {"NS"});          // second flavour, odd parity
    b.array("U", {"NS", "4"});        // gauge links (read-mostly)
    b.array("PLAQ", {8});             // plaquette accumulator

    auto sweep = [&](const char *dst, const char *src,
                     const std::string &var) {
        b.doall(var, 1, sites - 2, [&] {
            auto i = b.v(var);
            // Gather neighbours in four directions from the other parity.
            b.read(src, {i});
            b.read(src, {i - 1});
            b.read(src, {i + 1});
            // Wrap-free strided neighbours (kept in range).
            b.ifUnknown(hir::TakePolicy::Hash,
                        [&] { b.read(src, {b.unknown()}); },
                        [&] { b.read(src, {i}); });
            b.doserial(var + "mu", 0, 3, [&] {
                b.read("U", {i, b.v(var + "mu")});
                b.compute(6);
            });
            b.write(dst, {i});
        });
    };

    b.proc("MAIN", [&] {
        b.doserial("init", 0, sites - 1, [&] {
            b.write("PHIE", {b.v("init")});
            b.write("PHIO", {b.v("init")});
        });
        b.doserial("iu", 0, sites - 1, [&] {
            b.doserial("mu0", 0, 3, [&] {
                b.write("U", {b.v("iu"), b.v("mu0")});
            });
        });

        b.doserial("ic", 0, sites - 1, [&] {
            b.write("CHIE", {b.v("ic")});
            b.write("CHIO", {b.v("ic")});
        });

        b.doserial("s", 0, sweeps - 1, [&] {
            sweep("PHIE", "PHIO", "e" );
            sweep("PHIO", "PHIE", "o");
            // Second flavour rides the same gauge field.
            sweep("CHIE", "CHIO", "ce");
            sweep("CHIO", "CHIE", "co");
            // Occasional serial heat-bath link refresh at data-dependent
            // sites - the compiler cannot bound these writes.
            b.doserial("hb", 0, lstride - 1, [&] {
                b.read("U", {b.unknown(), b.c(0)});
                b.write("U", {b.unknown(), b.c(1)});
            });
            // Plaquette measurement under the lock.
            b.doall("pm", 0, sites - 1, [&] {
                b.read("PHIE", {b.v("pm")});
                b.compute(2);
                b.critical([&] {
                    b.read("PLAQ", {b.c(0)});
                    b.write("PLAQ", {b.c(0)});
                });
            });
            b.read("PLAQ", {b.c(0)});
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
