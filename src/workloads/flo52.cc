/**
 * @file
 * FLO52-like kernel: transonic flow over an airfoil, multigrid Euler.
 *
 * Structure modeled: each multigrid cycle smooths on the fine grid,
 * restricts the residual to two successively coarser grids, smooths
 * there, and prolongs the correction back. The per-level working sets
 * differ by 4x, exercising replacement behaviour, and the inter-level
 * transfers use strided (every-other-point) sections.
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildFlo52(int scale)
{
    const std::int64_t n0 = 64L * scale; // fine grid
    const std::int64_t n1 = n0 / 2;
    const std::int64_t n2 = n0 / 4;
    const int cycles = 3;

    ProgramBuilder b;
    b.param("N0", n0);
    b.param("N1", n1);
    b.param("N2", n2);
    b.array("W0", {"N0"}); // fine-grid state
    b.array("W1", {"N1"});
    b.array("W2", {"N2"});
    b.array("R0", {"N0"}); // residuals
    b.array("R1", {"N1"});

    // Red-black smoothing: odd points update from (untouched) even
    // neighbours, then vice versa - the standard legal parallelization of
    // an in-place relaxation.
    auto smooth = [&](const std::string &arr, std::int64_t n,
                      const std::string &var) {
        for (int color = 0; color < 2; ++color) {
            std::string v = var + (color ? "r" : "b");
            b.doall(v, 1 + color, n - 2, [&] {
                b.read(arr, {b.v(v) - 1});
                b.read(arr, {b.v(v)});
                b.read(arr, {b.v(v) + 1});
                b.compute(5);
                b.write(arr, {b.v(v)});
            }, 2);
        }
    };

    b.proc("MAIN", [&] {
        b.doserial("init", 0, n0 - 1, [&] {
            b.write("W0", {b.v("init")});
        });

        b.doserial("c", 0, cycles - 1, [&] {
            smooth("W0", n0, "s0");
            // Residual on the fine grid.
            b.doall("r", 1, n0 - 2, [&] {
                b.read("W0", {b.v("r") - 1});
                b.read("W0", {b.v("r") + 1});
                b.compute(3);
                b.write("R0", {b.v("r")});
            });
            // Restrict: coarse point j gathers fine points 2j-1..2j+1.
            b.doall("j", 1, n1 - 2, [&] {
                b.read("R0", {b.v("j") * 2 - 1});
                b.read("R0", {b.v("j") * 2});
                b.read("R0", {b.v("j") * 2 + 1});
                b.compute(2);
                b.write("W1", {b.v("j")});
            });
            smooth("W1", n1, "s1");
            b.doall("j2", 1, n2 - 2, [&] {
                b.read("W1", {b.v("j2") * 2 - 1});
                b.read("W1", {b.v("j2") * 2});
                b.read("W1", {b.v("j2") * 2 + 1});
                b.compute(2);
                b.write("W2", {b.v("j2")});
            });
            smooth("W2", n2, "s2");
            // Prolong the coarse correction back up (strided writes).
            b.doall("p1", 1, n2 - 2, [&] {
                b.read("W2", {b.v("p1")});
                b.write("R1", {b.v("p1") * 2});
                b.write("R1", {b.v("p1") * 2 + 1});
            });
            b.doall("p0", 1, n1 - 2, [&] {
                b.read("R1", {b.v("p0")});
                b.read("W1", {b.v("p0")});
                b.compute(2);
                b.write("W0", {b.v("p0") * 2});
                b.write("W0", {b.v("p0") * 2 + 1});
            });
            smooth("W0", n0, "s3");
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
