/** @file Benchmark registry. */

#include "workloads/workloads.hh"

#include "common/log.hh"
#include "common/strutil.hh"
#include "workloads/synth.hh"

namespace hscd {
namespace workloads {

std::vector<std::string>
benchmarkNames()
{
    return {"ADM", "FLO52", "OCEAN", "QCD2", "SPEC77", "TRFD"};
}

hir::Program
buildBenchmark(const std::string &name, int scale)
{
    const std::string n = toLower(trim(name));
    if (n == "adm")
        return buildAdm(scale);
    if (n == "flo52")
        return buildFlo52(scale);
    if (n == "ocean")
        return buildOcean(scale);
    if (n == "qcd2")
        return buildQcd2(scale);
    if (n == "spec77")
        return buildSpec77(scale);
    if (n == "trfd")
        return buildTrfd(scale);
    if (isSynthSpec(n))
        return buildSynth(parseSynthSpec(n), scale);
    fatal("unknown benchmark '%s' (expected one of adm, flo52, ocean, "
          "qcd2, spec77, trfd, or synth:<family>:<seed>)", name);
}

} // namespace workloads
} // namespace hscd
