/**
 * @file
 * SPEC77-like kernel: spectral atmospheric model.
 *
 * Structure modeled: each timestep alternates (a) an inverse transform,
 * DOALL over latitudes, where every task broadcast-reads the whole
 * spectral coefficient vector (written in the previous phase) against a
 * read-only Legendre table and produces its grid row; and (b) a forward
 * transform, DOALL over wavenumbers, where every task gathers one column
 * of the grid. Broadcast reads of freshly written data dominate, so the
 * marking is Time-Read-heavy but the schedule is affine, which is where
 * TPI's timetags pay off.
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildSpec77(int scale)
{
    const std::int64_t nlat = 16L * scale;   // latitudes
    const std::int64_t nspec = 24L * scale;  // spectral coefficients
    const int steps = 3;

    ProgramBuilder b;
    b.param("NLAT", nlat);
    b.param("NSPEC", nspec);
    b.array("SPEC", {"NSPEC"});          // vorticity coefficients
    b.array("DIV", {"NSPEC"});           // divergence coefficients
    b.array("GRID", {"NLAT", "NSPEC"});  // grid-point field
    b.array("PLN", {"NSPEC", "NLAT"});   // Legendre table (read-only)
    b.array("TEND", {"NSPEC"});          // tendencies
    b.array("HLM", {"NSPEC"});           // Helmholtz workspace

    b.proc("MAIN", [&] {
        b.doserial("is", 0, nspec - 1, [&] {
            b.write("SPEC", {b.v("is")});
            b.write("DIV", {b.v("is")});
        });

        b.doserial("t", 0, steps - 1, [&] {
            // Inverse transform: grid row per latitude.
            b.doall("lat", 0, nlat - 1, [&] {
                b.doserial("m", 0, nspec - 1, [&] {
                    b.read("SPEC", {b.v("m")});       // broadcast read
                    b.read("PLN", {b.v("m"), b.v("lat")});
                    b.compute(3);
                    b.write("GRID", {b.v("lat"), b.v("m")});
                });
            });
            // Physics: local update of each grid row.
            b.doall("lat2", 0, nlat - 1, [&] {
                b.doserial("m2", 0, nspec - 1, [&] {
                    b.read("GRID", {b.v("lat2"), b.v("m2")});
                    b.compute(5);
                    b.write("GRID", {b.v("lat2"), b.v("m2")});
                });
            });
            // Forward transform: gather one column per wavenumber.
            b.doall("m3", 0, nspec - 1, [&] {
                b.doserial("lat3", 0, nlat - 1, [&] {
                    b.read("GRID", {b.v("lat3"), b.v("m3")});
                    b.read("PLN", {b.v("m3"), b.v("lat3")});
                    b.compute(3);
                });
                b.write("TEND", {b.v("m3")});
            });
            // Semi-implicit Helmholtz solve: a forward/backward recursion
            // over the coefficients on one processor (covered reads),
            // then a parallel application to both spectral fields.
            b.doserial("h", 1, nspec - 1, [&] {
                b.read("TEND", {b.v("h")});
                // Loop-carried recursion: serial-affinity keeps this an
                // ordinary load (only this serial loop writes HLM).
                b.read("HLM", {b.v("h") - 1});
                b.compute(2);
                b.write("HLM", {b.v("h")});
            });
            b.doall("m4", 0, nspec - 1, [&] {
                b.read("TEND", {b.v("m4")});
                b.read("HLM", {b.v("m4")});
                b.read("SPEC", {b.v("m4")});
                b.read("DIV", {b.v("m4")});
                b.compute(4);
                b.write("SPEC", {b.v("m4")});
                b.write("DIV", {b.v("m4")});
            });
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
