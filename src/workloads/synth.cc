/** @file Seed-deterministic synthetic workload generators. */

#include "workloads/synth.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "hir/builder.hh"

namespace hscd {
namespace workloads {

using hir::IntExpr;
using hir::ProgramBuilder;

namespace {

/** FNV-1a: stable family fingerprint for seeding the PCG stream. */
std::uint64_t
familyHash(const std::string &family)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : family)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

std::string
loopVar(const char *base, int round)
{
    return std::string(base) + std::to_string(round);
}

/**
 * Streaming: long unit/strided passes that copy-transform one buffer
 * into another, rotating through 2-4 buffers so each round consumes the
 * previous round's output. Low reuse; misses should be dominated by
 * cold/replacement, and direction reversals force cross-processor
 * producer-consumer pairs under block scheduling.
 */
hir::Program
genStreaming(Rng &rng, int scale)
{
    const std::int64_t n =
        (48 + 16 * static_cast<std::int64_t>(rng.below(4))) * scale;
    const int streams = 2 + static_cast<int>(rng.below(3));
    const int rounds = 2 + static_cast<int>(rng.below(2));
    const std::int64_t stride = rng.chance(0.3) ? 2 : 1;
    const std::int64_t iters = n / stride;

    ProgramBuilder b;
    b.param("N", n);
    std::vector<std::string> arr;
    for (int s = 0; s < streams; ++s) {
        arr.push_back("S" + std::to_string(s));
        b.array(arr.back(), std::vector<std::int64_t>{n});
    }
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            for (const std::string &a : arr)
                b.write(a, {b.v("init")});
        });
        for (int r = 0; r < rounds; ++r) {
            const std::string &src = arr[r % streams];
            const std::string &dst = arr[(r + 1) % streams];
            const bool reversed = rng.chance(0.35);
            const Cycles work = 1 + rng.below(4);
            const std::string iv = loopVar("i", r);
            b.doall(iv, 0, iters - 1, [&] {
                IntExpr idx =
                    reversed ? b.c((iters - 1) * stride) -
                                   b.v(iv) * stride
                             : b.v(iv) * stride;
                b.read(src, {idx});
                b.compute(work);
                b.write(dst, {idx});
            });
        }
    });
    return b.build();
}

/**
 * Dense reuse: every task broadcast-reads a handful of slots of a small
 * table each round plus its own accumulator. Half the seeds keep the
 * table read-only after init (Normal reads, high hit rates); the other
 * half rewrite it serially every other round, turning the broadcasts
 * into short-distance Time-Reads.
 */
hir::Program
genReuse(Rng &rng, int scale)
{
    const std::int64_t m = 8 + 4 * static_cast<std::int64_t>(rng.below(4));
    const std::int64_t k =
        (32 + 16 * static_cast<std::int64_t>(rng.below(3))) * scale;
    const int rounds = 3 + static_cast<int>(rng.below(3));
    const bool rewrite = rng.chance(0.5);
    const int slots = 2 + static_cast<int>(rng.below(3));

    ProgramBuilder b;
    b.param("M", m);
    b.param("K", k);
    b.array("T", {"M"});
    b.array("OUT", {"K"});
    b.proc("MAIN", [&] {
        b.doserial("it", 0, m - 1, [&] { b.write("T", {b.v("it")}); });
        b.doserial("io", 0, k - 1, [&] { b.write("OUT", {b.v("io")}); });
        for (int r = 0; r < rounds; ++r) {
            if (rewrite && r % 2 == 1) {
                const std::string wv = loopVar("w", r);
                b.doserial(wv, 0, m - 1, [&] {
                    b.write("T", {b.v(wv)});
                });
            }
            const Cycles work = 1 + rng.below(3);
            std::vector<std::int64_t> picks;
            for (int s = 0; s < slots; ++s)
                picks.push_back(rng.below(static_cast<std::uint32_t>(m)));
            const std::string iv = loopVar("i", r);
            b.doall(iv, 0, k - 1, [&] {
                for (std::int64_t p : picks)
                    b.read("T", {b.c(p)});
                b.read("OUT", {b.v(iv)});
                b.compute(work);
                b.write("OUT", {b.v(iv)});
            });
        }
    });
    return b.build();
}

/**
 * Producer-consumer: a chain of 2-4 stages per round; stage j's task i
 * consumes stage j-1's elements i+off for a random offset subset of
 * {-1,0,+1} (all produced in the previous epoch), optionally followed
 * by a serial consumer that scans the chain tail.
 */
hir::Program
genProdcons(Rng &rng, int scale)
{
    const std::int64_t n =
        (32 + 8 * static_cast<std::int64_t>(rng.below(5))) * scale;
    const int stages = 2 + static_cast<int>(rng.below(3));
    const int rounds = 2 + static_cast<int>(rng.below(2));
    const bool serialTail = rng.chance(0.5);

    ProgramBuilder b;
    b.param("N", n);
    std::vector<std::string> stage;
    for (int s = 0; s <= stages; ++s) {
        stage.push_back("S" + std::to_string(s));
        b.array(stage.back(), std::vector<std::int64_t>{n});
    }
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            for (const std::string &a : stage)
                b.write(a, {b.v("init")});
        });
        for (int r = 0; r < rounds; ++r) {
            const std::string pv = loopVar("p", r);
            b.doall(pv, 0, n - 1, [&] {
                b.compute(2);
                b.write(stage[0], {b.v(pv)});
            });
            for (int s = 1; s <= stages; ++s) {
                // Random nonempty offset subset of {-1, 0, +1}.
                std::vector<std::int64_t> offs;
                for (std::int64_t o : {-1, 0, 1})
                    if (rng.chance(0.5))
                        offs.push_back(o);
                if (offs.empty())
                    offs.push_back(0);
                const Cycles work = 1 + rng.below(3);
                const std::string cv =
                    "c" + std::to_string(r) + "_" + std::to_string(s);
                b.doall(cv, 1, n - 2, [&] {
                    for (std::int64_t o : offs)
                        b.read(stage[s - 1], {b.v(cv) + o});
                    b.compute(work);
                    b.write(stage[s], {b.v(cv)});
                });
            }
            if (serialTail) {
                const std::string tv = loopVar("t", r);
                b.doserial(tv, 0, 7, [&] {
                    b.read(stage[stages], {b.v(tv) * (n / 8)});
                });
            }
        }
    });
    return b.build();
}

/**
 * Stencil halo: double-buffered 1-D relaxation with randomized radius
 * 1-3. Half the seeds run a symmetric reverse sweep per step, the rest
 * a plain copy-back; interior reads of radius-r halos are the classic
 * one-epoch-distance Time-Read shape.
 */
hir::Program
genStencil(Rng &rng, int scale)
{
    const std::int64_t rdx = 1 + static_cast<std::int64_t>(rng.below(3));
    const std::int64_t n =
        (40 + 8 * static_cast<std::int64_t>(rng.below(6))) * scale;
    const int steps = 2 + static_cast<int>(rng.below(3));
    const Cycles work = 2 + rng.below(5);
    const bool symmetric = rng.chance(0.5);

    ProgramBuilder b;
    b.param("N", n);
    b.param("R", rdx);
    b.array("OLD", {"N"});
    b.array("NEW", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("OLD", {b.v("init")});
            b.write("NEW", {b.v("init")});
        });
        b.doserial("t", 0, steps - 1, [&] {
            b.doall("i", rdx, n - 1 - rdx, [&] {
                for (std::int64_t d = -rdx; d <= rdx; ++d)
                    b.read("OLD", {b.v("i") + d});
                b.compute(work);
                b.write("NEW", {b.v("i")});
            });
            b.doall("j", rdx, n - 1 - rdx, [&] {
                if (symmetric) {
                    for (std::int64_t d = -rdx; d <= rdx; ++d)
                        b.read("NEW", {b.v("j") + d});
                    b.compute(work);
                } else {
                    b.read("NEW", {b.v("j")});
                }
                b.write("OLD", {b.v("j")});
            });
        });
    });
    return b.build();
}

/**
 * Migratory sharing: round r's task i owns (reads then rewrites) chunk
 * i+r, so every chunk migrates to the next task each round - the
 * read-modify-write handoff pattern invalidation protocols like and
 * update protocols hate. Half the seeds add a lock-protected shared
 * counter (migratory-via-critical-section).
 */
hir::Program
genMigratory(Rng &rng, int scale)
{
    const std::int64_t tasks =
        (8 + static_cast<std::int64_t>(rng.below(9))) * scale;
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.below(3));
    const int rounds = 3 + static_cast<int>(rng.below(3));
    const bool useLock = rng.chance(0.5);
    const std::int64_t chunks = tasks + rounds;

    ProgramBuilder b;
    b.param("T", tasks);
    b.param("W", w);
    b.array("M", std::vector<std::int64_t>{chunks * w});
    b.array("LCK", std::vector<std::int64_t>{2});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, chunks * w - 1, [&] {
            b.write("M", {b.v("init")});
        });
        b.write("LCK", {b.c(0)});
        for (int r = 0; r < rounds; ++r) {
            const Cycles work = 1 + rng.below(3);
            const std::string iv = loopVar("i", r);
            b.doall(iv, 0, tasks - 1, [&] {
                // Chunk i+r: element (i+r)*w + k is affine in i.
                for (std::int64_t k = 0; k < w; ++k)
                    b.read("M", {b.v(iv) * w + (r * w + k)});
                b.compute(work);
                for (std::int64_t k = 0; k < w; ++k)
                    b.write("M", {b.v(iv) * w + (r * w + k)});
                if (useLock) {
                    b.critical([&] {
                        b.read("LCK", {b.c(0)});
                        b.write("LCK", {b.c(0)});
                    });
                }
            });
        }
    });
    return b.build();
}

/**
 * False sharing: each task repeatedly read-modify-writes its own slot
 * of a compact counter array, so adjacent tasks' slots share 4-word
 * lines (stride 1 packs 4 tasks per line; stride 2 packs 2). Most
 * seeds add a neighbour-scan phase that true-shares the same lines
 * across epochs for contrast.
 */
hir::Program
genFalseshare(Rng &rng, int scale)
{
    const std::int64_t tasks =
        (12 + static_cast<std::int64_t>(rng.below(9))) * scale;
    const std::int64_t stride = rng.chance(0.4) ? 2 : 1;
    const int rmw = 2 + static_cast<int>(rng.below(3));
    const int rounds = 3 + static_cast<int>(rng.below(3));
    const bool neighbours = rng.chance(0.6);

    ProgramBuilder b;
    b.param("T", tasks);
    b.array("CNT", std::vector<std::int64_t>{tasks * stride});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, tasks * stride - 1, [&] {
            b.write("CNT", {b.v("init")});
        });
        for (int r = 0; r < rounds; ++r) {
            const std::string iv = loopVar("i", r);
            b.doall(iv, 0, tasks - 1, [&] {
                for (int q = 0; q < rmw; ++q) {
                    b.read("CNT", {b.v(iv) * stride});
                    b.compute(1);
                    b.write("CNT", {b.v(iv) * stride});
                }
            });
            if (neighbours) {
                const std::string nv = loopVar("n", r);
                b.doall(nv, 1, tasks - 2, [&] {
                    b.read("CNT", {b.v(nv) * stride - stride});
                    b.read("CNT", {b.v(nv) * stride + stride});
                    b.compute(1);
                });
            }
        }
    });
    return b.build();
}

} // namespace

std::vector<std::string>
synthFamilies()
{
    return {"falseshare", "migratory", "prodcons",
            "reuse",      "stencil",   "streaming"};
}

bool
isSynthFamily(const std::string &name)
{
    const std::string n = toLower(trim(name));
    for (const std::string &f : synthFamilies())
        if (n == f)
            return true;
    return false;
}

bool
isSynthSpec(const std::string &spec)
{
    const std::string s = toLower(trim(spec));
    return s.rfind("synth:", 0) == 0;
}

std::string
SynthSpec::str() const
{
    return "synth:" + family + ":" + std::to_string(seed);
}

SynthSpec
parseSynthSpec(const std::string &spec)
{
    const std::string s = toLower(trim(spec));
    if (s.rfind("synth:", 0) != 0)
        fatal("not a synth spec: '%s' (expected synth:<family>:<seed>)",
              spec);
    const std::string rest = s.substr(6);
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos)
        fatal("bad synth spec '%s': expected synth:<family>:<seed>",
              spec);
    SynthSpec out;
    out.family = rest.substr(0, colon);
    const std::string seedStr = rest.substr(colon + 1);
    if (!isSynthFamily(out.family)) {
        std::string families;
        for (const std::string &f : synthFamilies())
            families += (families.empty() ? "" : ", ") + f;
        fatal("unknown synth family '%s' (expected one of %s)",
              out.family, families);
    }
    if (seedStr.empty())
        fatal("bad synth spec '%s': missing seed", spec);
    for (char c : seedStr)
        if (c < '0' || c > '9')
            fatal("bad synth seed '%s': expected a decimal integer",
                  seedStr);
    out.seed = std::strtoull(seedStr.c_str(), nullptr, 10);
    return out;
}

hir::Program
buildSynth(const SynthSpec &spec, int scale)
{
    if (scale < 1)
        fatal("synth scale must be >= 1, got %d", scale);
    const std::uint64_t fh = familyHash(spec.family);
    Rng rng(spec.seed ^ fh, fh | 1);
    if (spec.family == "falseshare")
        return genFalseshare(rng, scale);
    if (spec.family == "migratory")
        return genMigratory(rng, scale);
    if (spec.family == "prodcons")
        return genProdcons(rng, scale);
    if (spec.family == "reuse")
        return genReuse(rng, scale);
    if (spec.family == "stencil")
        return genStencil(rng, scale);
    if (spec.family == "streaming")
        return genStreaming(rng, scale);
    fatal("unknown synth family '%s'", spec.family);
}

hir::Program
buildSynth(const std::string &family, std::uint64_t seed, int scale)
{
    SynthSpec spec;
    spec.family = toLower(trim(family));
    spec.seed = seed;
    if (!isSynthFamily(spec.family))
        fatal("unknown synth family '%s'", family);
    return buildSynth(spec, scale);
}

} // namespace workloads
} // namespace hscd
