/**
 * @file
 * Memory-trace ingestion frontend.
 *
 * Replays externally captured access streams - traces from a real
 * machine, another simulator, or a hand-written scenario - through any
 * of the five coherence schemes, without an HIR program. The text
 * format is one access per line:
 *
 *     # comment (blank lines ignored)
 *     procs <P>                  # optional, before the first access
 *     <proc> <addr> <r|w> [<epoch>]
 *
 * with byte addresses (word aligned, 4 bytes) and monotone epoch
 * numbers; an increase emits epoch boundaries (barriers). The parser
 * is strict: malformed lines, out-of-range processor ids, misaligned
 * or out-of-range addresses, non-monotone epochs, and a torn
 * (incomplete, unterminated) final line are all user errors - fatal()
 * with file:line context, which the CLIs map to the usage exit code
 * (2). Nothing is ever silently skipped or clamped.
 *
 * A trace carries no dependence information, so the marking stub is
 * maximally conservative: every read is a Time-Read of distance 0
 * (hardware may only vouch for words written in the current epoch),
 * which is sound whenever the trace's epoch markers separate
 * cross-processor dependences - the same contract compiled programs
 * satisfy at their barriers.
 */

#ifndef HSCD_WORKLOADS_TRACE_HH
#define HSCD_WORKLOADS_TRACE_HH

#include <string>
#include <vector>

#include "sim/trace.hh"

namespace hscd {
namespace workloads {

/** A parsed external trace, ready to replay. */
struct TraceWorkload
{
    std::vector<sim::TraceRecord> records;
    unsigned procs = 1;      ///< declared, or 1 + max proc id seen
    Addr dataBytes = 0;      ///< footprint (max addr, line-rounded)
    Counter reads = 0;
    Counter writes = 0;
    EpochId epochs = 1;      ///< 1 + highest epoch number seen
    std::string source;      ///< label (file path or test name)
};

/** Does @p spec look like a trace workload spec (`trace:...`)? */
bool isTraceSpec(const std::string &spec);

/** Extract the file path from `trace:<file>`; fatal if empty. */
std::string traceSpecPath(const std::string &spec);

/**
 * Parse trace text; @p name labels diagnostics ("<name>:<line>: ...").
 * fatal() (FatalError) on any malformed input.
 */
TraceWorkload parseTraceText(const std::string &text,
                             const std::string &name);

/** Read and parse a trace file; fatal() if unreadable or malformed. */
TraceWorkload loadTraceFile(const std::string &path);

/** Convenience: loadTraceFile(traceSpecPath(spec)). */
TraceWorkload loadTraceSpec(const std::string &spec);

/**
 * Replay @p t under @p cfg's scheme and return sweep-compatible
 * counters. The machine is widened to the trace's processor count if
 * needed; byte-identical output for the same (trace, cfg) at any
 * thread count. @p sink (optional) receives every record plus the
 * scheme's verdict, for hscd_inspect-style attribution.
 */
sim::RunResult runTrace(const TraceWorkload &t, const MachineConfig &cfg,
                        sim::TraceSink *sink = nullptr);

} // namespace workloads
} // namespace hscd

#endif // HSCD_WORKLOADS_TRACE_HH
