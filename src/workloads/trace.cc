/** @file External memory-trace parsing and replay. */

#include "workloads/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/strutil.hh"
#include "hir/program.hh"

namespace hscd {
namespace workloads {

namespace {

// Strictness bounds: a trace asking for more than these is almost
// certainly corrupt, and refusing beats allocating gigabytes.
constexpr unsigned kMaxProcs = 1024;
constexpr Addr kMaxAddr = Addr{1} << 26;       // 64 MiB footprint
constexpr EpochId kMaxEpoch = EpochId{1} << 20;

/** Strict non-negative decimal; false on junk/overflow. */
bool
parseUint(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > (std::uint64_t{1} << 40))
            return false;
    }
    out = v;
    return true;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

[[noreturn]] void
traceError(const std::string &name, std::size_t lineno,
           const std::string &what)
{
    fatal("trace %s:%d: %s", name, static_cast<std::uint64_t>(lineno),
          what);
}

} // namespace

bool
isTraceSpec(const std::string &spec)
{
    const std::string s = toLower(trim(spec));
    return s.rfind("trace:", 0) == 0;
}

std::string
traceSpecPath(const std::string &spec)
{
    const std::string s = trim(spec);
    if (toLower(s).rfind("trace:", 0) != 0)
        fatal("not a trace spec: '%s' (expected trace:<file>)", spec);
    const std::string path = s.substr(6);
    if (path.empty())
        fatal("bad trace spec '%s': missing file path", spec);
    return path;
}

TraceWorkload
parseTraceText(const std::string &text, const std::string &name)
{
    TraceWorkload out;
    out.source = name;

    bool procsDeclared = false;
    unsigned declaredProcs = 0;
    unsigned maxProc = 0;
    Addr maxAddr = 0;
    EpochId epoch = 0;
    mem::ValueStamp stamp = 0;

    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        if (pos == text.size() && lineno > 0)
            break;
        const std::size_t nl = text.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::string line =
            text.substr(pos, terminated ? nl - pos : std::string::npos);
        pos = terminated ? nl + 1 : text.size() + 1;
        ++lineno;

        const std::vector<std::string> toks = tokenize(line);
        if (toks.empty())
            continue;
        // An unterminated final line may be a torn tail from a killed
        // writer; accept it only if it parses as a complete record.
        const char *torn =
            terminated ? "" : " (torn final line: no trailing newline)";

        if (toks[0] == "procs") {
            if (!out.records.empty() || out.reads + out.writes > 0)
                traceError(name, lineno,
                           "'procs' directive must precede all accesses");
            if (procsDeclared)
                traceError(name, lineno, "duplicate 'procs' directive");
            std::uint64_t p = 0;
            if (toks.size() != 2 || !parseUint(toks[1], p) || p == 0)
                traceError(name, lineno,
                           csprintf("malformed 'procs' directive '%s'%s",
                                    trim(line), torn));
            if (p > kMaxProcs)
                traceError(name, lineno,
                           csprintf("procs %d out of range (max %d)", p,
                                    kMaxProcs));
            procsDeclared = true;
            declaredProcs = static_cast<unsigned>(p);
            continue;
        }

        std::uint64_t proc = 0, addr = 0, ep = 0;
        const bool shapeOk = toks.size() == 3 || toks.size() == 4;
        if (!shapeOk || !parseUint(toks[0], proc) ||
            !parseUint(toks[1], addr) ||
            (toks[2] != "r" && toks[2] != "w" && toks[2] != "R" &&
             toks[2] != "W") ||
            (toks.size() == 4 && !parseUint(toks[3], ep))) {
            traceError(name, lineno,
                       csprintf("malformed access record '%s'%s "
                                "(expected <proc> <addr> <r|w> [<epoch>])",
                                trim(line), torn));
        }
        if (procsDeclared ? proc >= declaredProcs : proc >= kMaxProcs)
            traceError(name, lineno,
                       csprintf("processor id %d out of range (%s)", proc,
                                procsDeclared
                                    ? csprintf("declared procs %d",
                                               declaredProcs)
                                    : csprintf("max %d", kMaxProcs)));
        if (addr % hir::wordBytes != 0)
            traceError(name, lineno,
                       csprintf("address %d is not word-aligned (%d bytes)",
                                addr, hir::wordBytes));
        if (addr >= kMaxAddr)
            traceError(name, lineno,
                       csprintf("address %d out of range (max %d)", addr,
                                kMaxAddr - 1));
        if (toks.size() == 4) {
            if (ep < epoch)
                traceError(name, lineno,
                           csprintf("non-monotone epoch %d (current %d)",
                                    ep, epoch));
            if (ep > kMaxEpoch)
                traceError(name, lineno,
                           csprintf("epoch %d out of range (max %d)", ep,
                                    kMaxEpoch));
            while (epoch < ep) {
                ++epoch;
                sim::TraceRecord b;
                b.type = sim::TraceRecord::Type::Boundary;
                b.epoch = epoch;
                out.records.push_back(b);
            }
        }

        sim::TraceRecord r;
        r.type = sim::TraceRecord::Type::Access;
        r.op.proc = static_cast<ProcId>(proc);
        r.op.addr = static_cast<Addr>(addr);
        r.op.write = toks[2] == "w" || toks[2] == "W";
        r.op.arrayId = 0;
        // Conservative stub: no dependence info, so hardware may only
        // vouch for words written in the current epoch.
        r.op.mark = r.op.write ? compiler::MarkKind::Normal
                               : compiler::MarkKind::TimeRead;
        r.op.distance = 0;
        r.op.stamp = r.op.write ? ++stamp : 0;
        r.op.critical = false;
        out.records.push_back(r);

        maxProc = std::max(maxProc, static_cast<unsigned>(proc));
        maxAddr = std::max(maxAddr, static_cast<Addr>(addr));
        if (r.op.write)
            ++out.writes;
        else
            ++out.reads;
    }

    if (out.reads + out.writes == 0)
        traceError(name, lineno ? lineno : 1, "trace contains no accesses");

    out.procs = procsDeclared ? declaredProcs : maxProc + 1;
    out.dataBytes = ((maxAddr + hir::wordBytes + 63) / 64) * 64;
    out.epochs = epoch + 1;
    return out;
}

TraceWorkload
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file '%s'", path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return parseTraceText(ss.str(), path);
}

TraceWorkload
loadTraceSpec(const std::string &spec)
{
    return loadTraceFile(traceSpecPath(spec));
}

sim::RunResult
runTrace(const TraceWorkload &t, const MachineConfig &cfg_in,
         sim::TraceSink *sink)
{
    MachineConfig cfg = cfg_in;
    if (cfg.procs < t.procs)
        cfg.procs = t.procs;
    sim::ReplayResult rr =
        sim::replayTrace(t.records, cfg, t.dataBytes, sink);

    sim::RunResult out;
    out.cycles = rr.cycles;
    out.epochs = t.epochs;
    out.reads = rr.reads;
    out.writes = rr.writes;
    out.readMisses = rr.readMisses;
    out.readHits = rr.reads - rr.readMisses;
    out.readMissRate = rr.readMissRate;
    out.missConservative = rr.missConservative;
    out.missFalseShare = rr.missFalseShare;
    out.trafficWords = rr.trafficWords;
    out.abort = rr.abort;
    return out;
}

} // namespace workloads
} // namespace hscd
