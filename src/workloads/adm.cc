/**
 * @file
 * ADM-like kernel: pseudospectral air-pollution transport (3-D
 * advection-diffusion).
 *
 * Structure modeled: operator splitting alternates (a) implicit vertical
 * diffusion - DOALL over horizontal columns, each task running a
 * tridiagonal forward-elimination / back-substitution over its column
 * with strong intra-task temporal locality (covered reads) - and (b)
 * horizontal advection sweeps that read the field transposed, so the
 * sharing pattern flips between phases.
 */

#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace workloads {

using hir::ProgramBuilder;

hir::Program
buildAdm(int scale)
{
    const std::int64_t nh = 16L * scale; // horizontal columns
    const std::int64_t nz = 12;          // vertical levels
    const int steps = 3;

    ProgramBuilder b;
    b.param("NH", nh);
    b.param("NZ", nz);
    b.array("Q", {"NZ", "NH"});    // concentration, species 1
    b.array("Q2", {"NZ", "NH"});   // concentration, species 2
    b.array("WK", {"NZ", "NH"});   // elimination workspace
    b.array("KV", {"NZ"});         // diffusivity profile (read-only)
    b.array("FLX", {"NH"});        // horizontal fluxes
    b.array("EMIT", {"NH"});       // surface emissions (serial update)

    b.proc("MAIN", [&] {
        b.doserial("iz", 0, nz - 1, [&] {
            b.doserial("ih", 0, nh - 1, [&] {
                b.write("Q", {b.v("iz"), b.v("ih")});
                b.write("Q2", {b.v("iz"), b.v("ih")});
            });
        });

        b.doserial("t", 0, steps - 1, [&] {
            // Serial emission update (ground-level sources) feeding the
            // surface layer of both species.
            b.doserial("e", 0, nh - 1, [&] {
                b.read("EMIT", {b.v("e")});
                b.write("EMIT", {b.v("e")});
            });
            b.doall("ce", 0, nh - 1, [&] {
                b.read("EMIT", {b.v("ce")});
                b.read("Q", {b.c(0), b.v("ce")});
                b.write("Q", {b.c(0), b.v("ce")});
                b.read("Q2", {b.c(0), b.v("ce")});
                b.write("Q2", {b.c(0), b.v("ce")});
            });
            // Chemistry: local coupling between the species per column.
            b.doall("cc", 0, nh - 1, [&] {
                b.doserial("cz", 0, nz - 1, [&] {
                    b.read("Q", {b.v("cz"), b.v("cc")});
                    b.read("Q2", {b.v("cz"), b.v("cc")});
                    b.compute(5);
                    b.write("Q2", {b.v("cz"), b.v("cc")});
                });
            });
            // Vertical implicit solve: one tridiagonal system per column.
            b.doall("c", 0, nh - 1, [&] {
                // Forward elimination (downward sweep).
                b.doserial("z", 1, nz - 1, [&] {
                    b.read("KV", {b.v("z")});
                    b.read("Q", {b.v("z"), b.v("c")});
                    b.read("WK", {b.v("z") - 1, b.v("c")});
                    b.compute(4);
                    b.write("WK", {b.v("z"), b.v("c")});
                });
                // Back substitution (upward sweep): WK reads covered.
                b.doserial("z2", 1, nz - 1, [&] {
                    b.read("WK", {b.p("NZ") - 1 - b.v("z2"), b.v("c")});
                    b.compute(3);
                    b.write("Q", {b.p("NZ") - 1 - b.v("z2"), b.v("c")});
                });
            });
            // Horizontal advection: level-parallel, transposed reads.
            b.doall("zl", 0, nz - 1, [&] {
                b.doserial("x", 1, nh - 2, [&] {
                    b.read("Q", {b.v("zl"), b.v("x") - 1});
                    b.read("Q", {b.v("zl"), b.v("x") + 1});
                    b.compute(3);
                });
                b.write("FLX", {b.v("zl")});
            });
            // Apply fluxes back onto the field.
            b.doall("c2", 0, nh - 1, [&] {
                b.doserial("z3", 0, nz - 1, [&] {
                    b.read("FLX", {b.v("z3")});
                    b.read("Q", {b.v("z3"), b.v("c2")});
                    b.compute(2);
                    b.write("Q", {b.v("z3"), b.v("c2")});
                });
            });
        });
    });
    return b.build();
}

} // namespace workloads
} // namespace hscd
