/**
 * @file
 * Synthetic reconstructions of the paper's six Perfect Club benchmarks,
 * plus microkernels.
 *
 * The original Perfect Club codes (and the exact Polaris parallelization
 * the authors used) are not redistributable, so each kernel here models
 * the published loop and sharing structure of its namesake at a reduced
 * problem size:
 *
 *   SPEC77  - spectral weather: per-latitude transforms that broadcast-
 *             read the spectral coefficient array written by the previous
 *             phase; large read-only Legendre tables.
 *   OCEAN   - 2-D ocean basin circulation: double-buffered 5-point
 *             stencil sweeps with serial boundary updates and a global
 *             reduction in a critical section.
 *   FLO52   - transonic-flow multigrid Euler solver: smooth / restrict /
 *             prolong sweeps over three grid levels with different
 *             working sets.
 *   QCD2    - 4-D lattice gauge theory: checkerboard (even/odd) site
 *             updates reading neighbour sites, read-mostly link arrays,
 *             and data-dependent (compile-time-opaque) heat-bath site
 *             selections.
 *   TRFD    - two-electron integral transformation: triangular loop
 *             nests that accumulate into a shared matrix, rewriting the
 *             same words many times per task (the paper's redundant
 *             write-through traffic case).
 *   ADM     - pseudospectral air-pollution transport: per-column implicit
 *             vertical solves (strong intra-task locality) alternating
 *             with transposed horizontal sweeps.
 *
 * Scale 1 is test-sized; scale 2 is the default benchmark size.
 */

#ifndef HSCD_WORKLOADS_WORKLOADS_HH
#define HSCD_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace workloads {

/** The six Perfect-Club-like benchmarks, in the paper's order. */
std::vector<std::string> benchmarkNames();

/**
 * Build one of the six by name (case-insensitive), or a seeded
 * synthetic workload via a `synth:<family>:<seed>` spec (see
 * workloads/synth.hh); fatal on typo.
 */
hir::Program buildBenchmark(const std::string &name, int scale = 2);

hir::Program buildSpec77(int scale = 2);
hir::Program buildOcean(int scale = 2);
hir::Program buildFlo52(int scale = 2);
hir::Program buildQcd2(int scale = 2);
hir::Program buildTrfd(int scale = 2);
hir::Program buildAdm(int scale = 2);

// --- microkernels used by examples and focused experiments -------------

/** 1-D double-buffered Jacobi stencil. */
hir::Program microJacobi(std::int64_t n = 256, int steps = 8);
/** Dense matrix multiply C = A*B with DOALL over columns. */
hir::Program microMatmul(std::int64_t n = 24);
/** Global sum via critical-section accumulators. */
hir::Program microReduction(std::int64_t n = 512, int rounds = 4);
/** Out-of-place transpose ping-pong (all-to-all sharing). */
hir::Program microTranspose(std::int64_t n = 32, int rounds = 4);
/** Producer-consumer phase chain with serial glue code. */
hir::Program microPipeline(std::int64_t n = 256, int rounds = 6);
/** Right-looking LU factorization without pivoting (shrinking DOALLs). */
hir::Program microLu(std::int64_t n = 24);
/** FFT-style perfect-shuffle stages over a double buffer. */
hir::Program microFft(std::int64_t n = 256, int rounds = 6);

} // namespace workloads
} // namespace hscd

#endif // HSCD_WORKLOADS_WORKLOADS_HH
