/**
 * @file
 * Analytic contention model for buffered multistage interconnection
 * networks, after Kruskal and Snir [24].
 *
 * For a k-ary buffered banyan under offered load rho (packets per port
 * per cycle), the mean waiting time per stage is
 *
 *     w(rho) = rho * (1 - 1/k) / (2 * (1 - rho))
 *
 * and a traversal of the n = ceil(log_k P) stages costs n * (1 + w).
 * The simulator measures offered load over an execution window (an epoch)
 * and applies the resulting contention delay to the next window - a
 * standard one-step-lag fixed point that keeps the simulation
 * deterministic.
 */

#ifndef HSCD_NETWORK_KRUSKAL_SNIR_HH
#define HSCD_NETWORK_KRUSKAL_SNIR_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "fault/injector.hh"
#include "mem/machine_config.hh"

namespace hscd {
namespace net {

/** Consequence of pushing one message through a (possibly faulty)
 *  network: how many copies arrive and how late. copies == 0 means the
 *  message was lost and the sender must retransmit. */
struct MsgFate
{
    unsigned copies = 1;
    Cycles extraDelay = 0;
};

class Network
{
  public:
    Network(stats::StatGroup *parent, unsigned procs, unsigned radix,
            double max_load, Topology topology = Topology::MIN);

    /** Switch stages (MIN) or average routing hops (torus). */
    unsigned stages() const { return _stages; }
    Topology topology() const { return _topology; }

    /** Record @p packets network packets carrying @p words words. */
    void addTraffic(Counter packets, Counter words);

    /** Close the current measurement window ending at @p now. */
    void endWindow(Cycles now);

    /** Offered load used for the current window's delays. */
    double load() const { return _load; }

    /** Mean queueing delay for one network traversal (cycles). */
    double traversalWait() const;

    /** Contention cycles added to an access with @p traversals hops. */
    Cycles contentionDelay(unsigned traversals) const;

    /** Thread the machine's fault injector through the boundary;
     *  nullptr (the default) keeps delivery perfect and free. */
    void setFaultInjector(fault::FaultInjector *inj) { _fault = inj; }

    /**
     * Decide the fate of one protocol/data message at the network
     * boundary. Perfect delivery unless an injector is attached; with
     * one, the message may be dropped, duplicated, delayed behind cross
     * traffic, or overtaken (reordered) - each a deterministic
     * counter-based draw.
     */
    MsgFate deliver();

    Counter totalPackets() const { return _packets.value(); }
    Counter totalWords() const { return _words.value(); }

  private:
    unsigned _procs;
    unsigned _radix;
    Topology _topology;
    unsigned _stages;
    double _maxLoad;
    double _load = 0.0;
    fault::FaultInjector *_fault = nullptr;

    Cycles _windowStart = 0;
    Counter _windowFlits = 0;

    stats::StatGroup _group;
    stats::Scalar _packets;
    stats::Scalar _words;
    stats::Average _loadAvg;
};

} // namespace net
} // namespace hscd

#endif // HSCD_NETWORK_KRUSKAL_SNIR_HH
