#include "network/kruskal_snir.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace hscd {
namespace net {

Network::Network(stats::StatGroup *parent, unsigned procs, unsigned radix,
                 double max_load, Topology topology)
    : _procs(procs), _radix(radix < 2 ? 2 : radix), _topology(topology),
      _maxLoad(max_load),
      _group("network", parent),
      _packets(&_group, "packets", "total network packets"),
      _words(&_group, "words", "total data words moved"),
      _loadAvg(&_group, "load", "offered load per window")
{
    if (_topology == Topology::MIN) {
        unsigned n = 0;
        std::uint64_t span = 1;
        while (span < _procs) {
            span *= _radix;
            ++n;
        }
        _stages = n ? n : 1;
    } else {
        // T3D-like 3-D torus, dimension-order routing: with k nodes per
        // dimension the average distance per dimension is k/4 (wrap
        // links), so ~3k/4 hops per traversal.
        unsigned k = 1;
        while (std::uint64_t(k) * k * k < _procs)
            ++k;
        unsigned hops = (3 * k + 3) / 4;
        _stages = hops ? hops : 1;
    }
}

void
Network::addTraffic(Counter packets, Counter words)
{
    _packets += packets;
    _words += words;
    // Channel occupancy is per flit: a line transfer loads the network in
    // proportion to its words; header-only packets count as one flit.
    _windowFlits += words > 0 ? words : packets;
}

void
Network::endWindow(Cycles now)
{
    if (now > _windowStart) {
        double cycles = static_cast<double>(now - _windowStart);
        double rho = static_cast<double>(_windowFlits) /
                     (cycles * _procs);
        if (rho > _maxLoad)
            rho = _maxLoad;
        _load = rho;
        _loadAvg.sample(rho);
    }
    _windowStart = now;
    _windowFlits = 0;
}

double
Network::traversalWait() const
{
    if (_topology == Topology::MIN) {
        // Kruskal-Snir mean waiting time per stage times the stage count.
        double per_stage =
            _load * (1.0 - 1.0 / _radix) / (2.0 * (1.0 - _load));
        return per_stage * _stages;
    }
    // Torus: each hop contends with the two other dimensions plus
    // through traffic; the M/M/1-style term without the radix discount.
    double per_hop = _load / (2.0 * (1.0 - _load));
    return per_hop * _stages;
}

Cycles
Network::contentionDelay(unsigned traversals) const
{
    double d = traversalWait() * traversals;
    return static_cast<Cycles>(std::llround(d));
}

MsgFate
Network::deliver()
{
    MsgFate fate;
    if (!_fault)
        return fate;
    using fault::Site;
    if (_fault->fire(Site::NetDrop)) {
        fate.copies = 0;
        return fate;
    }
    if (_fault->fire(Site::NetDup))
        fate.copies = 2;
    if (_fault->fire(Site::NetDelay)) {
        // Queued behind a burst of cross traffic: up to eight extra
        // full traversals, never zero.
        fate.extraDelay +=
            1 + _fault->draw(Site::NetDelay) % (8ull * _stages);
    }
    if (_fault->fire(Site::NetReorder)) {
        // Overtaken by one younger message: in a one-message-at-a-time
        // analytic model this is an extra traversal's worth of lateness.
        fate.extraDelay += _stages;
    }
    return fate;
}

} // namespace net
} // namespace hscd
